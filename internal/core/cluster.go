// Package core implements the paper's primary contribution: the adaptive
// cost-based clustering index for multidimensional extended objects (§3–§6).
//
// The database is a flat set of materialized clusters, each carrying a
// signature (internal/sig), a sequential member store (column-major float32
// layout for data locality, so a query verifies one dimension of all members
// as one contiguous scan), and performance indicators for itself and for its
// virtual candidate subclusters. Queries scan all cluster signatures,
// explore matching clusters, verify members with the columnar block-scan
// kernels, and update statistics; every ReorgEvery queries the index
// reorganizes clusters by merging or splitting according to the cost model
// (internal/cost).
package core

import (
	"accluster/internal/geom"
	"accluster/internal/sig"
)

// candSet stores the virtual candidate subclusters of one materialized
// cluster (paper §3.1) in parallel structure-of-arrays columns: the split
// defining each candidate, its cached variation-interval bounds for the
// refined dimension, and its performance indicators. The columnar layout
// matters because every exploration updates the query indicator of every
// candidate — with the bounds packed contiguously that pass streams a few
// bytes per candidate instead of striding through per-candidate records.
type candSet struct {
	sp       []sig.Split
	dim      []int32   // sp[i].Dim, the hot copy for the query-stat pass
	aLo, aHi []float32 // variation interval for interval starts
	bLo, bHi []float32 // variation interval for interval ends
	n        []int32   // objects of the owner matching the candidate
	q        []float64 // decayed count of queries matching the candidate
}

// len returns the number of candidates.
func (cs *candSet) len() int { return len(cs.sp) }

// matchesObjectDim reports whether an owner member with the refined
// dimension's interval [lo,hi] qualifies for candidate i.
func (cs *candSet) matchesObjectDim(i int, lo, hi float32) bool {
	return sig.InVar(lo, cs.aLo[i], cs.aHi[i]) && sig.InVar(hi, cs.bLo[i], cs.bHi[i])
}

// matchesQueryDim reports whether a query already matching the owner also
// matches candidate i on the refined dimension.
func (cs *candSet) matchesQueryDim(i int, rel geom.Relation, qlo, qhi float32) bool {
	return sig.QueryDimMatch(rel, qlo, qhi, cs.aLo[i], cs.aHi[i], cs.bLo[i], cs.bHi[i])
}

// Cluster is a materialized group of objects accessed and checked together
// during spatial selections (§3.1). Members are stored sequentially in
// column-major (structure-of-arrays) order: ids[i] pairs with the
// per-dimension coordinate columns lo[d][i], hi[d][i]. The columnar layout
// lets a selection verify one dimension of every member as a single
// contiguous scan (internal/geom's Filter kernels) instead of striding
// through interleaved per-object records.
type Cluster struct {
	signature sig.Signature
	parent    *Cluster
	children  []*Cluster

	ids []uint32
	lo  [][]float32 // lo[d][i] = interval start of member i in dimension d
	hi  [][]float32 // hi[d][i] = interval end of member i in dimension d

	cands candSet
	q     float64 // decayed count of queries exploring this cluster

	// statsEpoch is the reorganization epoch q and cands.q were last aged
	// to; the deferred factor Decay^(Index.epoch−statsEpoch) is applied
	// when the cluster is next touched (syncStats).
	statsEpoch int64
	// createdEpoch is the reorganization epoch the cluster materialized
	// in. During that epoch the cluster is exempt from merge decisions
	// (the synchronous full pass never revisited same-round children
	// either): its inherited statistics still mirror the parent's, and
	// merging it straight back would waste the relocations and loop.
	createdEpoch int64

	pos     int  // index in Index.clusters (O(1) removal)
	removed bool // set when merged away

	// Reorganization scheduling: queued marks membership in the revisit
	// queue; prio is the benefit estimate cached at the previous revisit
	// that orders the queue (refreshed lazily when the cluster is
	// processed); activeSplit pins the candidate currently being
	// materialized in chunks (-1 when none) — other candidates are not
	// evaluated until it completes, because their membership indicators
	// still count the members the active split has yet to move out.
	queued      bool
	prio        float64
	activeSplit int
	// activeChild is the cluster the pinned split is filling (nil when
	// none); while set, that child is exempt from merge decisions — its
	// statistics still mirror the parent's until the transfer completes.
	activeChild *Cluster
	// splitCursor is the member index the active split's scan resumes
	// from (it walks downward), so chunked materializations stay O(n)
	// over the whole split instead of rescanning the membership per
	// chunk. It is a hint: mutations between chunks can shuffle members
	// behind it, and the scan wraps around once when the candidate's
	// indicator says members remain.
	splitCursor int
}

// Signature returns the cluster's grouping signature.
func (c *Cluster) Signature() sig.Signature { return c.signature }

// Parent returns the parent cluster (nil for the root).
func (c *Cluster) Parent() *Cluster { return c.parent }

// Len returns the number of member objects n(c).
func (c *Cluster) Len() int { return len(c.ids) }

// IDs returns the member identifiers (shared storage; do not mutate).
func (c *Cluster) IDs() []uint32 { return c.ids }

// Column returns the coordinate columns of dimension d (shared storage; do
// not mutate).
func (c *Cluster) Column(d int) (lo, hi []float32) { return c.lo[d], c.hi[d] }

// flatData materializes the members as one interleaved (row-major) block in
// the flat layout of internal/geom — the transpose used by snapshots and the
// on-device store format, which keep the pre-columnar representation.
func (c *Cluster) flatData() []float32 {
	dims := len(c.lo)
	out := make([]float32, geom.FlatLen(len(c.ids), dims))
	for d := 0; d < dims; d++ {
		lo, hi := c.lo[d], c.hi[d]
		for i := range lo {
			out[i*2*dims+2*d] = lo[i]
			out[i*2*dims+2*d+1] = hi[i]
		}
	}
	return out
}

// Candidates returns the number of candidate subclusters tracked.
func (c *Cluster) Candidates() int { return c.cands.len() }

// newCluster builds a cluster with the given signature and candidate set
// derived by the clustering function with division factor f.
func newCluster(s sig.Signature, f int) *Cluster {
	c := &Cluster{
		signature:   s,
		lo:          make([][]float32, s.Dims()),
		hi:          make([][]float32, s.Dims()),
		activeSplit: -1,
	}
	splits := sig.Enumerate(s, f)
	c.cands = candSet{
		sp:  splits,
		dim: make([]int32, len(splits)),
		aLo: make([]float32, len(splits)),
		aHi: make([]float32, len(splits)),
		bLo: make([]float32, len(splits)),
		bHi: make([]float32, len(splits)),
		n:   make([]int32, len(splits)),
		q:   make([]float64, len(splits)),
	}
	for i, sp := range splits {
		aLo, aHi, bLo, bHi := sp.Bounds(s)
		c.cands.dim[i] = int32(sp.Dim)
		c.cands.aLo[i], c.cands.aHi[i] = aLo, aHi
		c.cands.bLo[i], c.cands.bHi[i] = bLo, bHi
	}
	return c
}

// reservedGrowth mirrors the paper's storage utilization rule (§6): freshly
// (re)located clusters reserve 20–30% free slots to avoid frequent moves. We
// size capacities at 125% of the live size.
func reservedCap(n int) int {
	if n < 4 {
		return n + 1
	}
	return n + n/4
}

// grow reallocates the member storage with the reservation rule applied.
func (c *Cluster) grow() {
	n := len(c.ids)
	grow := reservedCap(n + 1)
	ids := make([]uint32, n, grow)
	copy(ids, c.ids)
	c.ids = ids
	// One slab backs all coordinate columns, keeping them contiguous in
	// dimension order (the scan order of the verification kernels). The
	// three-index slices cap each column at its reserved slots, so appends
	// never bleed into the neighbouring column.
	slab := make([]float32, 2*len(c.lo)*grow)
	for d := range c.lo {
		loBase, hiBase := (2*d)*grow, (2*d+1)*grow
		lo := slab[loBase : loBase+n : loBase+grow]
		hi := slab[hiBase : hiBase+n : hiBase+grow]
		copy(lo, c.lo[d])
		copy(hi, c.hi[d])
		c.lo[d], c.hi[d] = lo, hi
	}
}

// appendObject adds one member and updates the candidate indicators.
func (c *Cluster) appendObject(id uint32, r geom.Rect) int {
	pos := c.appendCoords(id, r.Min, r.Max)
	cs := &c.cands
	for i, d := range cs.dim {
		if cs.matchesObjectDim(i, r.Min[d], r.Max[d]) {
			cs.n[i]++
		}
	}
	return pos
}

// appendCoords appends the raw member row without touching the candidate
// indicators; min/max are indexed per dimension.
func (c *Cluster) appendCoords(id uint32, min, max []float32) int {
	pos := len(c.ids)
	if cap(c.ids) == len(c.ids) {
		c.grow()
	}
	c.ids = append(c.ids, id)
	for d := range c.lo {
		c.lo[d] = append(c.lo[d], min[d])
		c.hi[d] = append(c.hi[d], max[d])
	}
	return pos
}

// appendFrom appends member i of src (same dimensionality) and updates the
// candidate indicators, copying straight between coordinate columns without
// materializing a Rect; reorganizations move objects through this path.
func (c *Cluster) appendFrom(src *Cluster, i int) int {
	pos := len(c.ids)
	if cap(c.ids) == len(c.ids) {
		c.grow()
	}
	c.ids = append(c.ids, src.ids[i])
	for d := range c.lo {
		c.lo[d] = append(c.lo[d], src.lo[d][i])
		c.hi[d] = append(c.hi[d], src.hi[d][i])
	}
	cs := &c.cands
	for k, d := range cs.dim {
		lo, hi := src.objectDim(i, int(d))
		if cs.matchesObjectDim(k, lo, hi) {
			cs.n[k]++
		}
	}
	return pos
}

// objectDim returns the [lo,hi] interval of member i in dimension d.
func (c *Cluster) objectDim(i, d int) (lo, hi float32) {
	return c.lo[d][i], c.hi[d][i]
}

// removeObjectAt swap-removes member i and updates candidate indicators.
// It returns the id that was moved into slot i (or 0 and false when the
// removed member was the last one).
func (c *Cluster) removeObjectAt(i int) (movedID uint32, moved bool) {
	cs := &c.cands
	for k, d := range cs.dim {
		lo, hi := c.objectDim(i, int(d))
		if cs.matchesObjectDim(k, lo, hi) {
			cs.n[k]--
		}
	}
	last := len(c.ids) - 1
	if i != last {
		c.ids[i] = c.ids[last]
		for d := range c.lo {
			c.lo[d][i] = c.lo[d][last]
			c.hi[d][i] = c.hi[d][last]
		}
		movedID, moved = c.ids[i], true
	}
	c.ids = c.ids[:last]
	for d := range c.lo {
		c.lo[d] = c.lo[d][:last]
		c.hi[d] = c.hi[d][:last]
	}
	return movedID, moved
}

// rectAt materializes member i as a Rect.
func (c *Cluster) rectAt(i, dims int) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		r.Min[d] = c.lo[d][i]
		r.Max[d] = c.hi[d][i]
	}
	return r
}

// detachChild removes ch from c.children.
func (c *Cluster) detachChild(ch *Cluster) {
	for i, x := range c.children {
		if x == ch {
			c.children[i] = c.children[len(c.children)-1]
			c.children = c.children[:len(c.children)-1]
			return
		}
	}
}
