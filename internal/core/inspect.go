package core

// ClusterInfo is an operator-facing snapshot of one materialized cluster,
// exposing the quantities the cost model reasons about.
type ClusterInfo struct {
	// Signature renders the constrained dimensions of the cluster.
	Signature string
	// Objects is the member count n(c).
	Objects int
	// AccessProbability is the current estimate p(c) from the decayed
	// statistics window.
	AccessProbability float64
	// Depth is the distance to the root in the clustering hierarchy.
	Depth int
	// ConstrainedDims counts dimensions carrying a grouping constraint.
	ConstrainedDims int
	// Candidates is the number of virtual candidate subclusters tracked.
	Candidates int
	// Children is the number of materialized child clusters.
	Children int
}

// ClusterInfos reports every materialized cluster (root first). It is a
// diagnostic snapshot; building it is O(clusters · dims). It applies
// deferred statistics publications first, so it requires exclusive access.
func (ix *Index) ClusterInfos() []ClusterInfo {
	ix.exclusivePrep()
	depth := func(c *Cluster) int {
		d := 0
		for p := c.parent; p != nil; p = p.parent {
			d++
		}
		return d
	}
	out := make([]ClusterInfo, len(ix.clusters))
	for i, c := range ix.clusters {
		constrained := 0
		for d := 0; d < c.signature.Dims(); d++ {
			if c.signature.Constrained(d) {
				constrained++
			}
		}
		out[i] = ClusterInfo{
			Signature:         c.signature.String(),
			Objects:           len(c.ids),
			AccessProbability: ix.prob(ix.effectiveQ(c)),
			Depth:             depth(c),
			ConstrainedDims:   constrained,
			Candidates:        c.cands.len(),
			Children:          len(c.children),
		}
	}
	return out
}
