package core

// Deferred statistics publication: the machinery that lets spatial
// selections run under a shared (read) lock.
//
// The paper couples every query with bookkeeping — the explored clusters'
// query indicators Q, the candidate subclusters' indicators q, the decayed
// statistics window and the reorganization schedule all advance per query
// (§3.1) — which naively makes every search a write. To let concurrent
// searches of one index proceed in parallel, the query path is split in two:
//
//   - The *read phase* (searchRead) touches only state that mutations keep
//     frozen while readers are in flight: the cluster list, the signature
//     mirror, the member columns and the candidate bounds. Everything the
//     query would have written — cost-meter counts and the statistics
//     increments — is recorded into the query's own pooled scratch instead.
//   - The *publication phase* applies those recorded increments. Meter
//     deltas merge immediately into a SyncMeter (its own short mutex, safe
//     under the shared lock). Statistics deltas are enqueued into a small
//     mailbox and applied by the next caller that holds the index
//     exclusively: every mutating operation drains the mailbox on entry,
//     and lock-owning wrappers (accluster.Adaptive, internal/shard) call
//     TryDrainStats after each query — opportunistically with TryLock, so
//     readers never wait for publication, with a blocking drain only once
//     the backlog reaches StatsBacklogMax.
//
// Applied increments are exactly the ones the serial path would have made
// (+1 per explored cluster and matched candidate, one window tick per
// query), so after all deltas drain, concurrent and serial execution of the
// same query set leave identical statistics up to the commutative reordering
// of the additions.

import (
	"sync"
)

// StatsBacklogMax bounds the statistics-publication mailbox: once this many
// query deltas are queued, the next publisher drains with a blocking lock
// acquisition instead of an opportunistic TryLock, capping both the memory
// pinned by queued scratches and the staleness of the adaptive statistics.
const StatsBacklogMax = 128

// statDelta records the statistics publication one query owes: the
// signature-matching clusters (one Q increment each) and, per cluster, the
// candidate subclusters the query virtually explored (one q increment each),
// as a flat index list sliced by candOff.
type statDelta struct {
	clusters []*Cluster
	candOff  []int32 // len(clusters)+1 offsets into cands
	cands    []int32 // flat matched-candidate indices
}

func (d *statDelta) reset() {
	for i := range d.clusters {
		d.clusters[i] = nil // do not pin merged-away clusters in the pool
	}
	d.clusters = d.clusters[:0]
	d.candOff = d.candOff[:0]
	d.cands = d.cands[:0]
}

// statPub is one mailbox entry: either a single query's scratch or a whole
// batch's. Exactly one field is set; the entry owns the scratch until the
// delta is applied, when it returns to its pool.
type statPub struct {
	sc *searchScratch
	bc *batchScratch
}

// getScratch takes a query scratch from the pool (its buffers are reset).
//
//ac:noalloc
func (ix *Index) getScratch() *searchScratch {
	if sc, ok := ix.scratch.Get().(*searchScratch); ok {
		return sc
	}
	//acvet:ignore noalloc pool-miss construction; steady state reuses pooled scratch
	return &searchScratch{}
}

// putScratch clears the per-query state and returns sc to the pool.
//
//ac:noalloc
func (ix *Index) putScratch(sc *searchScratch) {
	sc.meter.Reset()
	sc.stats.reset()
	ix.scratch.Put(sc)
}

// enqueueStats queues a completed query's statistics delta for the next
// exclusive holder; safe under the shared lock.
//
//ac:noalloc
func (ix *Index) enqueueStats(sc *searchScratch) {
	ix.pendMu.Lock()
	ix.pending = append(ix.pending, statPub{sc: sc})
	ix.pendN.Store(int32(len(ix.pending)))
	ix.pendMu.Unlock()
}

// enqueueBatchStats queues a completed batch's statistics delta — the whole
// batch is one mailbox entry, so it costs one drain; safe under the shared
// lock.
//
//ac:noalloc
func (ix *Index) enqueueBatchStats(bc *batchScratch) {
	ix.pendMu.Lock()
	ix.pending = append(ix.pending, statPub{bc: bc})
	ix.pendN.Store(int32(len(ix.pending)))
	ix.pendMu.Unlock()
}

// StatsBacklog reports the number of queued statistics publications. It is
// safe to call from any goroutine.
func (ix *Index) StatsBacklog() int { return int(ix.pendN.Load()) }

// exclusivePrep is the entry guard of every operation requiring exclusive
// access: it rejects calls from inside an in-flight query on the same
// goroutine (the one way the exclusivity contract can be broken without a
// data race — an emit callback calling back into the index) and applies all
// queued statistics publications so the operation observes current
// statistics.
//
//ac:excl
func (ix *Index) exclusivePrep() {
	if ix.readers.Load() != 0 {
		panic("core: exclusive operation during an in-flight query (emit must not call back into the index)")
	}
	ix.applyPending()
}

// applyPending applies every queued statistics delta in enqueue order and
// returns the number of queries applied (a batched entry counts as its
// query count). Caller must hold the index exclusively.
//
//ac:excl
func (ix *Index) applyPending() int {
	if ix.pendN.Load() == 0 {
		return 0
	}
	ix.pendMu.Lock()
	batch := ix.pending
	ix.pending = ix.pendSpare
	ix.pendSpare = nil
	ix.pendN.Store(0)
	ix.pendMu.Unlock()
	n := 0
	for i, p := range batch {
		if p.sc != nil {
			ix.applyScratch(p.sc)
			ix.putScratch(p.sc)
			n++
		} else {
			if ix.sinceReorg+p.bc.stats.nq < ix.cfg.ReorgEvery {
				// No epoch boundary inside the batch: the
				// per-query replay is order-independent, so
				// apply cluster-major (see applyBatchInline).
				ix.applyBatchInline(p.bc)
			} else {
				for qi := 0; qi < p.bc.stats.nq; qi++ {
					ix.applyBatchQuery(p.bc, qi)
				}
			}
			n += p.bc.stats.nq
			ix.putBatchScratch(p.bc)
		}
		batch[i] = statPub{}
	}
	ix.pendMu.Lock()
	if ix.pendSpare == nil {
		ix.pendSpare = batch[:0]
	}
	ix.pendMu.Unlock()
	return n
}

// applyScratch performs one query's deferred statistics publication: the
// exact increments the serial path makes inline — Q of every
// signature-matching cluster, q of every matched candidate, one statistics
// window tick, and the epoch trigger. Clusters merged away since the query
// ran are skipped; their statistics died with them, as they would have had
// the merge preceded the query.
func (ix *Index) applyScratch(sc *searchScratch) {
	d := &sc.stats
	for j, c := range d.clusters {
		if c.removed {
			continue
		}
		ix.syncStats(c)
		c.q++
		cq := c.cands.q
		for _, k := range d.cands[d.candOff[j]:d.candOff[j+1]] {
			cq[k]++
		}
	}
	ix.window++
	ix.sinceReorg++
	if ix.sinceReorg >= ix.cfg.ReorgEvery {
		ix.beginEpoch()
	}
}

// maxDrainReorgSteps caps the budgeted reorganization steps one DrainStats
// call runs when a batch of queued publications is applied at once: the
// serial cadence owes one step per query, but paying a whole
// StatsBacklogMax batch's worth of steps inside a single exclusive section
// would reintroduce exactly the latency cliff the budgeted scheduler
// removed. The remainder stays queued for later drains (or Reorganize).
const maxDrainReorgSteps = 8

// DrainStats applies all queued statistics publications and, unless the
// index defers maintenance to a background drainer
// (Config.BackgroundReorg), runs one budgeted reorganization step per
// applied query — the serial maintenance cadence — capped at
// maxDrainReorgSteps per call so the exclusive section stays bounded even
// when a full mailbox drains at once. It reports whether reorganization
// work remains queued. The caller must hold the index exclusively.
//
//ac:excl
func (ix *Index) DrainStats() bool {
	if ix.readers.Load() != 0 {
		panic("core: exclusive operation during an in-flight query (emit must not call back into the index)")
	}
	applied := ix.applyPending()
	if !ix.cfg.BackgroundReorg {
		if applied > maxDrainReorgSteps {
			applied = maxDrainReorgSteps
		}
		for i := 0; i < applied && len(ix.reorgQ) > 0; i++ {
			ix.drain(ix.cfg.ReorgBudgetClusters, ix.cfg.ReorgBudgetObjects)
		}
	}
	return len(ix.reorgQ) > 0
}

// TryDrainStats publishes queued statistics under mu, the reader/writer lock
// through which the caller serializes exclusive access to this index. It
// must be called WITHOUT mu held. Publication is opportunistic: while the
// backlog is below StatsBacklogMax a failed TryLock just leaves the deltas
// for the next exclusive holder, so concurrent readers never wait on
// publication; at the watermark it blocks to bound the backlog. Reports
// whether reorganization work is pending (the background-drainer wake
// signal); false when nothing was drained.
func (ix *Index) TryDrainStats(mu *sync.RWMutex) bool {
	if ix.pendN.Load() == 0 {
		return false
	}
	if ix.StatsBacklog() < StatsBacklogMax {
		if !mu.TryLock() {
			return false
		}
	} else {
		mu.Lock()
	}
	pending := ix.DrainStats()
	mu.Unlock()
	return pending
}
