package core

import (
	"math/rand"
	"sort"
	"testing"

	"accluster/internal/cost"
	"accluster/internal/geom"
)

func mustNew(t *testing.T, cfg Config) *Index {
	t.Helper()
	ix, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return ix
}

func randomRect(rng *rand.Rand, dims int, maxSize float32) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dims: 0}); err == nil {
		t.Error("Dims=0 must fail")
	}
	if _, err := New(Config{Dims: 2, DivisionFactor: 1}); err == nil {
		t.Error("DivisionFactor=1 must fail")
	}
	if _, err := New(Config{Dims: 2, ReorgEvery: -5}); err == nil {
		t.Error("negative ReorgEvery must fail")
	}
	if _, err := New(Config{Dims: 2, Decay: 1.5}); err == nil {
		t.Error("decay > 1 must fail")
	}
	ix := mustNew(t, Config{Dims: 2})
	cfg := ix.Config()
	if cfg.DivisionFactor != 4 || cfg.ReorgEvery != 100 || cfg.Decay != 0.5 || cfg.Params.Name != "memory" {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := mustNew(t, Config{Dims: 3})
	if ix.Len() != 0 || ix.Clusters() != 1 || ix.Dims() != 3 {
		t.Fatalf("empty index: len=%d clusters=%d", ix.Len(), ix.Clusters())
	}
	ids, err := ix.SearchIDs(geom.Point([]float32{0.5, 0.5, 0.5}), geom.Encloses)
	if err != nil || len(ids) != 0 {
		t.Fatalf("query on empty index: ids=%v err=%v", ids, err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertValidation(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2})
	r := geom.Rect{Min: []float32{0.1, 0.1}, Max: []float32{0.2, 0.2}}
	if err := ix.Insert(1, r); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(1, r); err == nil {
		t.Error("duplicate id must fail")
	}
	if err := ix.Insert(2, geom.Point([]float32{0.5})); err == nil {
		t.Error("wrong dimensionality must fail")
	}
	bad := geom.Rect{Min: []float32{0.5, 0.5}, Max: []float32{0.4, 0.6}}
	if err := ix.Insert(3, bad); err == nil {
		t.Error("inverted rectangle must fail")
	}
}

func TestInsertGetDelete(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2})
	rng := rand.New(rand.NewSource(42))
	rects := make(map[uint32]geom.Rect)
	for id := uint32(0); id < 500; id++ {
		r := randomRect(rng, 2, 0.3)
		rects[id] = r
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 500 {
		t.Fatalf("Len = %d, want 500", ix.Len())
	}
	for id, want := range rects {
		got, ok := ix.Get(id)
		if !ok || !got.Equal(want) {
			t.Fatalf("Get(%d) = %v,%v want %v", id, got, ok, want)
		}
	}
	if _, ok := ix.Get(9999); ok {
		t.Error("Get of absent id must report false")
	}
	// Delete half.
	for id := uint32(0); id < 250; id++ {
		if !ix.Delete(id) {
			t.Fatalf("Delete(%d) = false", id)
		}
	}
	if ix.Delete(0) {
		t.Error("double delete must report false")
	}
	if ix.Len() != 250 {
		t.Fatalf("Len after deletes = %d, want 250", ix.Len())
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchValidation(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2})
	if err := ix.Search(geom.Point([]float32{0.5}), geom.Intersects, func(uint32) bool { return true }); err == nil {
		t.Error("wrong query dimensionality must fail")
	}
	if err := ix.Search(geom.Point([]float32{0.5, 0.5}), geom.Relation(7), func(uint32) bool { return true }); err == nil {
		t.Error("invalid relation must fail")
	}
}

// runWorkload inserts objects, runs enough queries to let the clustering
// converge, and returns the queries used.
func runWorkload(t *testing.T, ix *Index, rng *rand.Rand, nObjs, nQueries int, maxObj, maxQry float32) []geom.Rect {
	t.Helper()
	dims := ix.Dims()
	for id := 0; id < nObjs; id++ {
		if err := ix.Insert(uint32(id), randomRect(rng, dims, maxObj)); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]geom.Rect, nQueries)
	for i := range queries {
		queries[i] = randomRect(rng, dims, maxQry)
		if err := ix.Search(queries[i], geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	return queries
}

func TestClusteringFormsAndStaysConsistent(t *testing.T) {
	ix := mustNew(t, Config{Dims: 4, ReorgEvery: 50})
	rng := rand.New(rand.NewSource(7))
	runWorkload(t, ix, rng, 3000, 400, 0.4, 0.2)
	if ix.Clusters() < 2 {
		t.Fatalf("expected clusters to materialize, still %d", ix.Clusters())
	}
	if ix.Splits() == 0 {
		t.Error("no splits recorded")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every object still retrievable.
	for id := uint32(0); id < 3000; id += 97 {
		if _, ok := ix.Get(id); !ok {
			t.Fatalf("object %d lost after reorganization", id)
		}
	}
}

func TestDifferentialAgainstBruteForce(t *testing.T) {
	// The index must return exactly the brute-force answer for every
	// relation, before and after reorganizations.
	for _, dims := range []int{1, 2, 5, 16} {
		rng := rand.New(rand.NewSource(int64(dims) * 31))
		ix := mustNew(t, Config{Dims: dims, ReorgEvery: 25})
		type obj struct {
			id uint32
			r  geom.Rect
		}
		var objs []obj
		for id := uint32(0); id < 1500; id++ {
			r := randomRect(rng, dims, 0.5)
			objs = append(objs, obj{id, r})
			if err := ix.Insert(id, r); err != nil {
				t.Fatal(err)
			}
		}
		for qi := 0; qi < 150; qi++ {
			q := randomRect(rng, dims, 0.6)
			rel := geom.Relation(qi % 3)
			got, err := ix.SearchIDs(q, rel)
			if err != nil {
				t.Fatal(err)
			}
			var want []uint32
			for _, o := range objs {
				if o.r.Matches(rel, q) {
					want = append(want, o.id)
				}
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("dims=%d rel=%v query %d: %d results, want %d (clusters=%d)",
					dims, rel, qi, len(got), len(want), ix.Clusters())
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dims=%d rel=%v query %d: result %d differs", dims, rel, qi, i)
				}
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("dims=%d: %v", dims, err)
		}
	}
}

func TestPointEnclosingQueries(t *testing.T) {
	ix := mustNew(t, Config{Dims: 3, ReorgEvery: 20})
	rng := rand.New(rand.NewSource(5))
	var objs []geom.Rect
	for id := uint32(0); id < 800; id++ {
		r := randomRect(rng, 3, 0.4)
		objs = append(objs, r)
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		p := geom.Point([]float32{rng.Float32(), rng.Float32(), rng.Float32()})
		got, err := ix.SearchIDs(p, geom.Encloses)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, r := range objs {
			if r.Encloses(p) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("point query %d: %d results, want %d", i, len(got), want)
		}
	}
}

func TestEarlyTermination(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2})
	for id := uint32(0); id < 100; id++ {
		r := geom.Rect{Min: []float32{0.4, 0.4}, Max: []float32{0.6, 0.6}}
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}
	seen := 0
	err := ix.Search(q, geom.Intersects, func(uint32) bool {
		seen++
		return seen < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("early termination delivered %d results, want 5", seen)
	}
}

func TestDeleteThenQueryConsistency(t *testing.T) {
	ix := mustNew(t, Config{Dims: 3, ReorgEvery: 10})
	rng := rand.New(rand.NewSource(19))
	live := make(map[uint32]geom.Rect)
	nextID := uint32(0)
	for round := 0; round < 30; round++ {
		for k := 0; k < 50; k++ {
			r := randomRect(rng, 3, 0.4)
			live[nextID] = r
			if err := ix.Insert(nextID, r); err != nil {
				t.Fatal(err)
			}
			nextID++
		}
		// Delete a random subset.
		for id := range live {
			if rng.Float32() < 0.2 {
				if !ix.Delete(id) {
					t.Fatalf("delete %d failed", id)
				}
				delete(live, id)
			}
		}
		q := randomRect(rng, 3, 0.5)
		got, err := ix.SearchIDs(q, geom.Intersects)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, r := range live {
			if r.Intersects(q) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("round %d: %d results, want %d", round, len(got), want)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeOnDistributionShift(t *testing.T) {
	// Clusters formed for one query pattern must merge away when the
	// pattern shifts so that they are explored as often as their parent.
	ix := mustNew(t, Config{Dims: 2, ReorgEvery: 50, Decay: 0.3, Params: cost.Disk()})
	rng := rand.New(rand.NewSource(23))
	for id := uint32(0); id < 5000; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 1: very selective queries in a corner → clusters form.
	for i := 0; i < 600; i++ {
		q := geom.Rect{Min: []float32{0, 0}, Max: []float32{0.05, 0.05}}
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	peak := ix.Clusters()
	if peak < 2 {
		t.Skipf("no clusters formed at phase 1 (clusters=%d)", peak)
	}
	// Phase 2: full-domain queries explore everything → separate
	// clusters stop paying for themselves on disk and merge back.
	for i := 0; i < 1500; i++ {
		q := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Merges() == 0 {
		t.Errorf("expected merges after query distribution shift (clusters %d → %d)", peak, ix.Clusters())
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMeterAccounting(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2})
	rng := rand.New(rand.NewSource(3))
	for id := uint32(0); id < 100; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}
	n, err := ix.Count(q, geom.Intersects)
	if err != nil {
		t.Fatal(err)
	}
	m := ix.Meter()
	if m.Queries != 1 || m.Explorations != 1 || m.Seeks != 1 {
		t.Fatalf("single-cluster query meter: %v", m)
	}
	if m.ObjectsVerified != 100 || m.Results != int64(n) || n != 100 {
		t.Fatalf("verification counts: %v (n=%d)", m, n)
	}
	wantBytes := int64(100) * int64(geom.ObjectBytes(2))
	if m.BytesTransferred != wantBytes {
		t.Fatalf("BytesTransferred = %d, want %d", m.BytesTransferred, wantBytes)
	}
	// The full-domain query satisfies the root signature's variation
	// intervals in every dimension, so the signature-implied column skip
	// proves every object matches without inspecting any member bytes.
	if m.BytesVerified != 0 {
		t.Fatalf("BytesVerified = %d, want 0 (all columns signature-skipped)", m.BytesVerified)
	}
	// A partial query cannot be proven by the signature: the first
	// scanned column inspects all 100 objects (8 bytes per dimension),
	// later columns only the survivors.
	ix.ResetMeter()
	half := geom.Rect{Min: []float32{0, 0}, Max: []float32{0.5, 1}}
	if _, err := ix.Count(half, geom.Intersects); err != nil {
		t.Fatal(err)
	}
	m = ix.Meter()
	if m.BytesVerified < 100*8 || m.BytesVerified > 100*2*8 {
		t.Fatalf("BytesVerified = %d, want within [%d,%d]", m.BytesVerified, 100*8, 100*2*8)
	}
	ix.ResetMeter()
	if ix.Meter() != (cost.Meter{}) {
		t.Fatal("ResetMeter must zero counters")
	}
}

func TestInsertPrefersColdClusters(t *testing.T) {
	// After clustering converges under corner queries, a new object that
	// qualifies both for the root and for a cold cluster must go to the
	// cold cluster (Fig. 4: lowest access probability).
	ix := mustNew(t, Config{Dims: 2, ReorgEvery: 20})
	rng := rand.New(rand.NewSource(77))
	for id := uint32(0); id < 4000; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.05)); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Rect{Min: []float32{0.9, 0.9}, Max: []float32{0.95, 0.95}}
	for i := 0; i < 400; i++ {
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Clusters() < 2 {
		t.Skip("clustering did not materialize under this workload")
	}
	// Insert an object in the opposite corner: must not land in the root
	// if any matching cluster is colder.
	r := geom.Rect{Min: []float32{0.01, 0.01}, Max: []float32{0.02, 0.02}}
	if err := ix.Insert(99999, r); err != nil {
		t.Fatal(err)
	}
	l := ix.loc[99999]
	rootP := ix.prob(ix.root.q)
	chosenP := ix.prob(l.c.q)
	if chosenP > rootP {
		t.Errorf("object placed in cluster with p=%g > root p=%g", chosenP, rootP)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestManualReorganizeIsSafe(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2})
	rng := rand.New(rand.NewSource(9))
	for id := uint32(0); id < 200; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	// No queries yet: reorganization must not corrupt anything.
	ix.Reorganize()
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ix.ReorgRounds() != 1 {
		t.Errorf("ReorgRounds = %d, want 1", ix.ReorgRounds())
	}
}

func TestStatsDecay(t *testing.T) {
	ix := mustNew(t, Config{Dims: 1, ReorgEvery: 10, Decay: 0.5})
	for id := uint32(0); id < 10; id++ {
		r := geom.Rect{Min: []float32{0.1}, Max: []float32{0.2}}
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Rect{Min: []float32{0, 0}, Max: []float32{1}}
	q = geom.Rect{Min: []float32{0}, Max: []float32{1}}
	for i := 0; i < 10; i++ {
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	// After the automatic reorganization the window was decayed once:
	// 10 queries * 0.5.
	if ix.window != 5 {
		t.Errorf("window = %g, want 5", ix.window)
	}
	if ix.root.q != 5 {
		t.Errorf("root q = %g, want 5", ix.root.q)
	}
}
