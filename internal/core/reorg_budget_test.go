package core

// Tests for the incremental budgeted reorganization subsystem and the
// query-path accounting it rides with: early-stopped searches charge only
// explored clusters, budgeted drains reach the synchronous full pass's
// steady state, lazy epoch decay equals eager decay, and snapshots carry the
// adaptive statistics forward.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"accluster/internal/geom"
	"accluster/internal/sig"
)

// twoClusterIndex fabricates a deterministic two-cluster index via Restore:
// the root holds nRoot objects with Min[0] ≥ 0.6, a child cluster
// (constrained to starts in [0,0.5)) holds nChild objects. The root is at
// position 0, so a full-domain intersection query explores it first.
func twoClusterIndex(t *testing.T, nRoot, nChild int) *Index {
	t.Helper()
	const dims = 2
	child := sig.Root(dims)
	child.AHi[0] = 0.5

	rootIDs, rootData := make([]uint32, nRoot), make([]float32, 0, nRoot*2*dims)
	for i := 0; i < nRoot; i++ {
		rootIDs[i] = uint32(i)
		lo := 0.6 + 0.3*float32(i)/float32(nRoot)
		rootData = append(rootData, lo, lo+0.05, 0.2, 0.3)
	}
	childIDs, childData := make([]uint32, nChild), make([]float32, 0, nChild*2*dims)
	for i := 0; i < nChild; i++ {
		childIDs[i] = uint32(1000 + i)
		lo := 0.1 + 0.3*float32(i)/float32(nChild)
		childData = append(childData, lo, lo+0.05, 0.4, 0.5)
	}
	ix, err := Restore(Config{Dims: dims, ReorgEvery: 1 << 30}, []ClusterSnapshot{
		{Signature: sig.Root(dims), Parent: -1, IDs: rootIDs, Data: rootData},
		{Signature: child, Parent: 0, IDs: childIDs, Data: childData},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestEarlyStopAccounting pins the satellite fix: once emit returns false,
// the remaining signature-matching clusters add no Seeks, Explorations,
// ObjectsVerified or BytesTransferred — but their clustering statistics
// (cluster and candidate query indicators) are still updated, exactly as if
// the query had run to completion.
func TestEarlyStopAccounting(t *testing.T) {
	ix := twoClusterIndex(t, 8, 8)
	q := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}

	// Stop inside the root (position 0): the child is matched but must
	// not be explored.
	if err := ix.Search(q, geom.Intersects, func(uint32) bool { return false }); err != nil {
		t.Fatal(err)
	}
	m := ix.Meter()
	if m.Explorations != 1 || m.Seeks != 1 {
		t.Fatalf("early stop explored %d clusters / %d seeks, want 1 / 1", m.Explorations, m.Seeks)
	}
	if m.ObjectsVerified != 8 {
		t.Fatalf("ObjectsVerified = %d, want 8 (root members only)", m.ObjectsVerified)
	}
	wantBytes := int64(8) * int64(geom.ObjectBytes(2))
	if m.BytesTransferred != wantBytes {
		t.Fatalf("BytesTransferred = %d, want %d (root region only)", m.BytesTransferred, wantBytes)
	}
	if m.Results != 1 {
		t.Fatalf("Results = %d, want 1", m.Results)
	}
	// Clustering statistics still cover both matching clusters.
	for pos, c := range ix.clusters {
		if c.q != 1 {
			t.Fatalf("cluster %d query indicator = %g, want 1 (statistics must cover matched-but-unexplored clusters)", pos, c.q)
		}
	}

	// The same query without early stop explores both clusters; the only
	// meter difference is the verification work of the second cluster.
	ix.ResetMeter()
	if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
		t.Fatal(err)
	}
	m = ix.Meter()
	if m.Explorations != 2 || m.Seeks != 2 || m.ObjectsVerified != 16 || m.Results != 16 {
		t.Fatalf("full run meter: %+v", m)
	}
}

// TestBudgetedReorgMatchesFullPass drives the identical differential
// workload (random inserts, deletes and queries) into an index reorganizing
// synchronously (unlimited budgets = the pre-incremental full pass at every
// trigger) and into budgeted ones, then converges each with repeated
// Reorganize rounds. The steady states must agree: same cluster count, same
// net structural outcome (splits − merges), equivalent per-query work, and
// comparable total relocation effort. Gross split/merge event counts are
// logged but only loosely bounded — chunked scheduling splits the same work
// into more, smaller events — and signature-level identity is deliberately
// not asserted: a near-threshold split choosing a different dimension
// cascades into a different but equally profitable subtree.
func TestBudgetedReorgMatchesFullPass(t *testing.T) {
	build := func(clusterBudget, objectBudget int) *Index {
		ix := mustNew(t, Config{
			Dims:                4,
			ReorgEvery:          50,
			ReorgBudgetClusters: clusterBudget,
			ReorgBudgetObjects:  objectBudget,
		})
		rng := rand.New(rand.NewSource(42))
		nextID := uint32(0)
		var live []uint32
		for step := 0; step < 12000; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // insert
				if err := ix.Insert(nextID, randomRect(rng, 4, 0.3)); err != nil {
					t.Fatal(err)
				}
				live = append(live, nextID)
				nextID++
			case op == 4 && len(live) > 0: // delete
				k := rng.Intn(len(live))
				ix.Delete(live[k])
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			default: // query
				q := randomRect(rng, 4, 0.4)
				if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Converge: repeated rounds until the structure stops changing
		// (each round revisits every cluster; children materialized in
		// one round are refined in the next).
		for i := 0; i < 50; i++ {
			s0, m0 := ix.Splits(), ix.Merges()
			ix.Reorganize()
			if ix.Splits() == s0 && ix.Merges() == m0 {
				break
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return ix
	}
	sync := build(-1, -1)
	deflt := build(0, 0) // default budgets (32 clusters / 128 objects per step)
	tight := build(4, 32)

	if sync.Splits() == 0 || sync.Merges() == 0 {
		t.Fatalf("workload exercised no churn (splits %d, merges %d) — test is vacuous", sync.Splits(), sync.Merges())
	}
	for _, ix := range []*Index{sync, deflt, tight} {
		t.Logf("budgets %d/%d: %d clusters, %d splits, %d merges (net %d), %d objects relocated",
			ix.Config().ReorgBudgetClusters, ix.Config().ReorgBudgetObjects,
			ix.Clusters(), ix.Splits(), ix.Merges(), ix.Splits()-ix.Merges(), ix.ObjectsRelocated())
	}

	// probe measures the steady-state per-query work over a fixed query
	// sample — the quantity the cost model optimizes.
	probe := func(ix *Index) (explored, verified float64) {
		ix.ResetMeter()
		rng := rand.New(rand.NewSource(7))
		const n = 200
		for i := 0; i < n; i++ {
			q := randomRect(rng, 4, 0.4)
			if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
				t.Fatal(err)
			}
		}
		m := ix.Meter()
		return float64(m.Explorations) / n, float64(m.ObjectsVerified) / n
	}
	se, sv := probe(sync)
	syncNet := sync.Splits() - sync.Merges()
	for _, tc := range []struct {
		name string
		ix   *Index
		// Tolerances: [cluster count ±, net splits−merges ±, verified
		// rel, relocation factor, gross-event factor]
		clusters, net int64
		verifiedTol   float64
		relocFactor   float64
		eventFactor   float64
	}{
		{"default budgets", deflt, 3, 3, 0.15, 1.6, 3},
		{"tight budgets", tight, 4, 4, 0.20, 3.0, 6},
	} {
		abs := func(x int64) int64 {
			if x < 0 {
				return -x
			}
			return x
		}
		if d := abs(int64(tc.ix.Clusters()) - int64(sync.Clusters())); d > tc.clusters {
			t.Errorf("%s: steady-state cluster count %d, sync %d (tolerance ±%d)",
				tc.name, tc.ix.Clusters(), sync.Clusters(), tc.clusters)
		}
		if d := abs((tc.ix.Splits() - tc.ix.Merges()) - syncNet); d > tc.net {
			t.Errorf("%s: net splits−merges %d, sync %d (tolerance ±%d)",
				tc.name, tc.ix.Splits()-tc.ix.Merges(), syncNet, tc.net)
		}
		e, v := probe(tc.ix)
		t.Logf("%s probe: %.1f explored / %.0f verified per query (sync %.1f / %.0f)", tc.name, e, v, se, sv)
		if v > sv*(1+tc.verifiedTol) {
			t.Errorf("%s steady state verifies %.0f objects/query, sync %.0f — clustering quality degraded beyond %.0f%%",
				tc.name, v, sv, 100*tc.verifiedTol)
		}
		if e > se*1.3+1 {
			t.Errorf("%s steady state explores %.1f clusters/query, sync %.1f", tc.name, e, se)
		}
		if r := float64(tc.ix.ObjectsRelocated()); r > tc.relocFactor*float64(sync.ObjectsRelocated()) {
			t.Errorf("%s relocated %.0f objects, sync %d — budgeting must not multiply maintenance work beyond %.1f×",
				tc.name, r, sync.ObjectsRelocated(), tc.relocFactor)
		}
		if s := tc.ix.Splits(); float64(s) > tc.eventFactor*float64(sync.Splits()) {
			t.Errorf("%s recorded %d split events, sync %d — chunked churn exceeded the %.0f× event bound",
				tc.name, s, sync.Splits(), tc.eventFactor)
		}
	}
}

// TestReorgStepContract pins the drain API: after an epoch opens, ReorgPending
// reports work, each ReorgStep makes progress, and drains converge to an
// empty queue with consistent invariants.
func TestReorgStepContract(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2, ReorgEvery: 10, ReorgBudgetClusters: 1, BackgroundReorg: true})
	rng := rand.New(rand.NewSource(5))
	for id := uint32(0); id < 2000; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.05)); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Rect{Min: []float32{0, 0}, Max: []float32{0.08, 0.08}}
	for i := 0; i < 10; i++ {
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	if !ix.ReorgPending() {
		t.Fatal("epoch rolled but no reorganization work pending (BackgroundReorg must not drain inline)")
	}
	steps := 0
	for ix.ReorgStep() {
		steps++
		if steps > 10000 {
			t.Fatal("ReorgStep never converged")
		}
	}
	if ix.ReorgPending() {
		t.Fatal("queue non-empty after ReorgStep reported completion")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyDecayEquivalence checks that a cluster left untouched for several
// epochs ages by exactly Decay^epochs when finally read, matching the eager
// per-round decay of the synchronous implementation.
func TestLazyDecayEquivalence(t *testing.T) {
	ix := twoClusterIndex(t, 4, 4)
	ix.cfg.Decay = 0.5

	full := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}
	if err := ix.Search(full, geom.Intersects, func(uint32) bool { return true }); err != nil {
		t.Fatal(err)
	}
	child := ix.clusters[1]
	if child.q != 1 {
		t.Fatalf("child q = %g, want 1", child.q)
	}
	// Three epochs pass without the child being explored or revisited
	// (opened directly; BackgroundReorg-style, nothing drains).
	ix.cfg.BackgroundReorg = true
	for i := 0; i < 3; i++ {
		ix.beginEpoch()
	}
	if got, want := ix.effectiveQ(child), 0.125; math.Abs(got-want) > 1e-12 {
		t.Fatalf("effectiveQ after 3 lazy epochs = %g, want %g", got, want)
	}
	ix.syncStats(child)
	if math.Abs(child.q-0.125) > 1e-12 {
		t.Fatalf("synced q = %g, want 0.125", child.q)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCarriesStatsAndContinuesWarm is the save/load/continue parity
// test: a restored index resumes with the saved window and per-cluster /
// per-candidate indicators, and continuing the identical query stream keeps
// it exactly in step with the never-interrupted original — same clusters,
// same churn — instead of the cold restart that re-learned the query
// distribution from an empty window.
func TestSnapshotCarriesStatsAndContinuesWarm(t *testing.T) {
	cfg := Config{Dims: 3, ReorgEvery: 30}
	ix := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(17))
	for id := uint32(0); id < 4000; id++ {
		if err := ix.Insert(id, randomRect(rng, 3, 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	// A concentrated query distribution that the clustering converges on.
	queries := make([]geom.Rect, 1200)
	for i := range queries {
		base := rng.Float32() * 0.1
		queries[i] = geom.Rect{
			Min: []float32{base, base, base},
			Max: []float32{base + 0.1, base + 0.1, base + 0.1},
		}
	}
	for _, q := range queries[:600] {
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}

	snap := ix.Snapshot()
	restored, err := Restore(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.SetStatsWindow(ix.StatsWindow()); err != nil {
		t.Fatal(err)
	}
	if restored.StatsWindow() != ix.StatsWindow() {
		t.Fatalf("window not restored: %g vs %g", restored.StatsWindow(), ix.StatsWindow())
	}
	// Per-signature cluster and candidate query indicators survive the
	// round trip exactly.
	type stats struct {
		q     float64
		candQ []float64
	}
	bySig := map[string]stats{}
	for _, c := range ix.clusters {
		bySig[c.signature.String()] = stats{q: ix.effectiveQ(c), candQ: c.cands.q}
	}
	for _, c := range restored.clusters {
		want, ok := bySig[c.signature.String()]
		if !ok || math.Abs(c.q-want.q) > 1e-9 {
			t.Fatalf("cluster %s restored q = %g, want %v", c.signature, c.q, want)
		}
		for k := range want.candQ {
			if math.Abs(c.cands.q[k]-want.candQ[k]) > 1e-9 {
				t.Fatalf("cluster %s candidate %d restored q = %g, want %g",
					c.signature, k, c.cands.q[k], want.candQ[k])
			}
		}
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Continue the identical stream on both; the warm restore must track
	// the original clustering step for step.
	churn0, churnR0 := ix.Splits()+ix.Merges(), restored.Splits()+restored.Merges()
	for _, q := range queries[600:] {
		for _, e := range []*Index{ix, restored} {
			if err := e.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
				t.Fatal(err)
			}
		}
	}
	ix.Reorganize()
	restored.Reorganize()
	sigsOf := func(e *Index) []string {
		out := make([]string, 0, len(e.clusters))
		for _, c := range e.clusters {
			out = append(out, c.signature.String())
		}
		sort.Strings(out)
		return out
	}
	a, b := sigsOf(ix), sigsOf(restored)
	if len(a) != len(b) {
		t.Fatalf("continued clusterings diverged: original %d clusters, restored %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("continued clusterings diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
	if d, dr := ix.Splits()+ix.Merges()-churn0, restored.Splits()+restored.Merges()-churnR0; d != dr {
		t.Errorf("continued churn diverged: original %d, restored %d", d, dr)
	}

	// A cold restore (statistics stripped, as a version-1 image loads)
	// starts with an empty window and no pending revisits — the old
	// behavior, still supported for pre-statistics images.
	for i := range snap {
		snap[i].Q, snap[i].CandQ = 0, nil
	}
	cold, err := Restore(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if cold.StatsWindow() != 0 {
		t.Fatalf("cold restore window = %g, want 0", cold.StatsWindow())
	}
	if cold.ReorgPending() {
		t.Fatal("cold restore must not queue revisits (zero probabilities degenerate the merge benefit)")
	}
	if !restored.ReorgPending() && restored.ReorgRounds() == 0 {
		// The warm restore rebuilt its queue deterministically; by now
		// it has been drained by the continued stream.
		t.Log("warm restore queue already drained (expected)")
	}
}

// TestRestoreRejectsInvalidStats pins the validation on the persisted
// statistics: negative or NaN indicators, and candidates exceeding their
// owner, are rejected instead of poisoning the cost model.
func TestRestoreRejectsInvalidStats(t *testing.T) {
	base := func() []ClusterSnapshot {
		ix := twoClusterIndex(t, 4, 4)
		full := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}
		if err := ix.Search(full, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
		return ix.Snapshot()
	}
	cases := []struct {
		name   string
		mutate func(s []ClusterSnapshot)
	}{
		{"negative cluster q", func(s []ClusterSnapshot) { s[1].Q = -1 }},
		{"NaN cluster q", func(s []ClusterSnapshot) { s[0].Q = math.NaN() }},
		{"candidate exceeds cluster", func(s []ClusterSnapshot) { s[1].CandQ[0] = s[1].Q + 1 }},
		{"candidate count mismatch", func(s []ClusterSnapshot) { s[1].CandQ = s[1].CandQ[:1] }},
	}
	for _, tc := range cases {
		snap := base()
		tc.mutate(snap)
		if _, err := Restore(Config{Dims: 2}, snap); err == nil {
			t.Errorf("%s: Restore accepted invalid statistics", tc.name)
		}
	}
	if _, err := New(Config{Dims: 2, Decay: math.NaN()}); err == nil {
		t.Error("NaN decay accepted by config validation")
	}
}
