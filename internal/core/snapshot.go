package core

import (
	"fmt"

	"accluster/internal/geom"
	"accluster/internal/sig"
)

// geomFromSnapshot materializes object k of a flat snapshot block.
func geomFromSnapshot(data []float32, k, dims int) geom.Rect {
	return geom.FromFlat(data, k, dims)
}

// ClusterSnapshot is the persistent image of one materialized cluster: its
// signature, its position in the clustering hierarchy and its members.
// Performance indicators are deliberately not part of the image — the paper
// notes that saving them is optional since new statistics can be gathered
// (§6, Fail Recovery). The member block keeps the interleaved (row-major)
// flat layout the on-device store format has always used; the in-memory
// engine transposes between it and its columnar storage at snapshot and
// restore time, so segments written before the columnar layout change load
// unchanged.
type ClusterSnapshot struct {
	// Signature is the cluster's grouping signature.
	Signature sig.Signature
	// Parent is the index of the parent cluster in the snapshot slice,
	// -1 for the root. The root is always the first element.
	Parent int
	// IDs are the member identifiers.
	IDs []uint32
	// Data is the flat coordinate block matching IDs.
	Data []float32
}

// Snapshot captures the index's clusters for persistence, in breadth-first
// order from the root so that every parent precedes its children (merges
// reorder the internal cluster list, so positional order is not
// topological). The returned slices share no storage with the index.
func (ix *Index) Snapshot() []ClusterSnapshot {
	order := make([]*Cluster, 0, len(ix.clusters))
	pos := make(map[*Cluster]int, len(ix.clusters))
	queue := []*Cluster{ix.root}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		pos[c] = len(order)
		order = append(order, c)
		queue = append(queue, c.children...)
	}
	out := make([]ClusterSnapshot, len(order))
	for i, c := range order {
		parent := -1
		if c.parent != nil {
			parent = pos[c.parent]
		}
		out[i] = ClusterSnapshot{
			Signature: c.signature.Clone(),
			Parent:    parent,
			IDs:       append([]uint32(nil), c.ids...),
			Data:      c.flatData(),
		}
	}
	return out
}

// Restore rebuilds an index from a snapshot. Candidate indicators are
// recomputed from the member objects; query statistics start fresh. The
// snapshot must contain the root cluster first (as produced by Snapshot).
func Restore(cfg Config, snap []ClusterSnapshot) (*Index, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if len(snap) == 0 {
		return nil, fmt.Errorf("core: empty snapshot")
	}
	if !snap[0].Signature.IsRoot() || snap[0].Parent != -1 {
		return nil, fmt.Errorf("core: snapshot[0] is not a root cluster")
	}
	ix, err := New(cfg)
	if err != nil {
		return nil, err
	}
	clusters := make([]*Cluster, len(snap))
	clusters[0] = ix.root
	for i := 1; i < len(snap); i++ {
		cs := snap[i]
		if cs.Signature.Dims() != cfg.Dims {
			return nil, fmt.Errorf("core: snapshot cluster %d has %d dims, want %d", i, cs.Signature.Dims(), cfg.Dims)
		}
		if cs.Parent < 0 || cs.Parent >= len(snap) || cs.Parent == i {
			return nil, fmt.Errorf("core: snapshot cluster %d has invalid parent %d", i, cs.Parent)
		}
		if cs.Parent > i {
			return nil, fmt.Errorf("core: snapshot cluster %d appears before its parent %d", i, cs.Parent)
		}
		c := newCluster(cs.Signature.Clone(), cfg.DivisionFactor)
		c.pos = i
		clusters[i] = c
	}
	for i := 1; i < len(snap); i++ {
		c, p := clusters[i], clusters[snap[i].Parent]
		if !p.signature.Covers(c.signature) {
			return nil, fmt.Errorf("core: snapshot cluster %d not covered by its parent", i)
		}
		c.parent = p
		p.children = append(p.children, c)
	}
	ix.clusters = clusters
	ix.rebuildSigBounds()
	for i, cs := range snap {
		c := clusters[i]
		if len(cs.Data) != len(cs.IDs)*2*cfg.Dims {
			return nil, fmt.Errorf("core: snapshot cluster %d has inconsistent data length", i)
		}
		for k, id := range cs.IDs {
			if _, dup := ix.loc[id]; dup {
				return nil, fmt.Errorf("core: snapshot contains duplicate object id %d", id)
			}
			r := geomFromSnapshot(cs.Data, k, cfg.Dims)
			if !c.signature.MatchesObject(r) {
				return nil, fmt.Errorf("core: snapshot object %d does not match cluster %d signature", id, i)
			}
			pos := c.appendObject(id, r)
			ix.loc[id] = objLoc{c: c, pos: int32(pos)}
		}
	}
	return ix, nil
}
