package core

import (
	"fmt"
	"math"

	"accluster/internal/geom"
	"accluster/internal/sig"
)

// geomFromSnapshot materializes object k of a flat snapshot block.
func geomFromSnapshot(data []float32, k, dims int) geom.Rect {
	return geom.FromFlat(data, k, dims)
}

// ClusterSnapshot is the persistent image of one materialized cluster: its
// signature, its position in the clustering hierarchy, its members and its
// adaptive query statistics. The paper notes that saving the performance
// indicators is optional since new statistics can be gathered (§6, Fail
// Recovery) — but a cold restart re-learns the query distribution from
// scratch and immediately re-churns splits and merges, so Snapshot captures
// them and Restore applies them when present (Q/CandQ zero/nil restores
// cold, which is how pre-statistics images load). The member block keeps the
// interleaved (row-major) flat layout the on-device store format has always
// used; the in-memory engine transposes between it and its columnar storage
// at snapshot and restore time, so segments written before the columnar
// layout change load unchanged.
type ClusterSnapshot struct {
	// Signature is the cluster's grouping signature.
	Signature sig.Signature
	// Parent is the index of the parent cluster in the snapshot slice,
	// -1 for the root. The root is always the first element.
	Parent int
	// IDs are the member identifiers.
	IDs []uint32
	// Data is the flat coordinate block matching IDs.
	Data []float32
	// Q is the cluster's decayed query indicator, aged to the snapshot
	// epoch.
	Q float64
	// CandQ holds the decayed query indicators of the candidate
	// subclusters in clustering-function enumeration order (nil when the
	// image carries no statistics). Its length must match the candidate
	// set the division factor derives for Signature.
	CandQ []float64
}

// Snapshot captures the index's clusters for persistence, in breadth-first
// order from the root so that every parent precedes its children (merges
// reorder the internal cluster list, so positional order is not
// topological). The returned slices share no storage with the index.
//
//ac:excl
func (ix *Index) Snapshot() []ClusterSnapshot {
	// Apply deferred statistics publications, then age every cluster to
	// the current epoch so the captured indicators are directly
	// comparable with the captured window.
	ix.exclusivePrep()
	ix.syncAllStats()
	order := make([]*Cluster, 0, len(ix.clusters))
	pos := make(map[*Cluster]int, len(ix.clusters))
	queue := []*Cluster{ix.root}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		pos[c] = len(order)
		order = append(order, c)
		queue = append(queue, c.children...)
	}
	out := make([]ClusterSnapshot, len(order))
	for i, c := range order {
		parent := -1
		if c.parent != nil {
			parent = pos[c.parent]
		}
		out[i] = ClusterSnapshot{
			Signature: c.signature.Clone(),
			Parent:    parent,
			IDs:       append([]uint32(nil), c.ids...),
			Data:      c.flatData(),
			Q:         c.q,
			CandQ:     append([]float64(nil), c.cands.q...),
		}
	}
	return out
}

// StatsWindow returns the decayed total query count W the per-cluster
// indicators are measured against, aged to the current epoch. Persist it
// next to the cluster statistics: probabilities only mean q/W.
func (ix *Index) StatsWindow() float64 {
	ix.exclusivePrep()
	return ix.window
}

// SetStatsWindow restores a persisted statistics window on a freshly
// restored index (before any queries run).
//
//ac:excl
func (ix *Index) SetStatsWindow(w float64) error {
	if math.IsNaN(w) || w < 0 {
		return fmt.Errorf("core: invalid statistics window %g", w)
	}
	ix.window = w
	return nil
}

// Restore rebuilds an index from a snapshot. Structural candidate indicators
// (membership counts) are recomputed from the member objects; the query
// statistics carried by the snapshot (Q, CandQ) are applied when present so
// adaptation resumes warm — restore the matching window with SetStatsWindow.
// The snapshot must contain the root cluster first (as produced by
// Snapshot).
func Restore(cfg Config, snap []ClusterSnapshot) (*Index, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if len(snap) == 0 {
		return nil, fmt.Errorf("core: empty snapshot")
	}
	if !snap[0].Signature.IsRoot() || snap[0].Parent != -1 {
		return nil, fmt.Errorf("core: snapshot[0] is not a root cluster")
	}
	ix, err := New(cfg)
	if err != nil {
		return nil, err
	}
	clusters := make([]*Cluster, len(snap))
	clusters[0] = ix.root
	for i := 1; i < len(snap); i++ {
		cs := snap[i]
		if cs.Signature.Dims() != cfg.Dims {
			return nil, fmt.Errorf("core: snapshot cluster %d has %d dims, want %d", i, cs.Signature.Dims(), cfg.Dims)
		}
		if cs.Parent < 0 || cs.Parent >= len(snap) || cs.Parent == i {
			return nil, fmt.Errorf("core: snapshot cluster %d has invalid parent %d", i, cs.Parent)
		}
		if cs.Parent > i {
			return nil, fmt.Errorf("core: snapshot cluster %d appears before its parent %d", i, cs.Parent)
		}
		c := newCluster(cs.Signature.Clone(), cfg.DivisionFactor)
		c.pos = i
		clusters[i] = c
	}
	for i := 1; i < len(snap); i++ {
		c, p := clusters[i], clusters[snap[i].Parent]
		if !p.signature.Covers(c.signature) {
			return nil, fmt.Errorf("core: snapshot cluster %d not covered by its parent", i)
		}
		c.parent = p
		p.children = append(p.children, c)
	}
	ix.clusters = clusters
	ix.rebuildSigBounds()
	for i, cs := range snap {
		c := clusters[i]
		if len(cs.Data) != len(cs.IDs)*2*cfg.Dims {
			return nil, fmt.Errorf("core: snapshot cluster %d has inconsistent data length", i)
		}
		for k, id := range cs.IDs {
			if _, dup := ix.loc[id]; dup {
				return nil, fmt.Errorf("core: snapshot contains duplicate object id %d", id)
			}
			r := geomFromSnapshot(cs.Data, k, cfg.Dims)
			if !c.signature.MatchesObject(r) {
				return nil, fmt.Errorf("core: snapshot object %d does not match cluster %d signature", id, i)
			}
			pos := c.appendObject(id, r)
			ix.loc[id] = objLoc{c: c, pos: int32(pos)}
		}
		if err := applyStats(c, cs, i); err != nil {
			return nil, err
		}
	}
	// The reorganization queue is rebuilt deterministically rather than
	// persisted: on a warm restore (statistics present) every cluster is
	// queued for one revisit, a superset of whatever revisits were pending
	// at snapshot time. Converged clusters no-op (no positive-benefit
	// merge or materialization), so the burst drains in a few budgeted
	// steps. A cold restore (no statistics, e.g. a version-1 image) keeps
	// the queue empty: with every probability at zero the merging benefit
	// degenerates to +A for all clusters, and revisiting would fold the
	// loaded clustering into the root before fresh statistics accrue.
	warm := false
	for _, cs := range snap {
		if cs.CandQ != nil || cs.Q > 0 {
			warm = true
			break
		}
	}
	if warm {
		for _, c := range clusters {
			ix.enqueueReorg(c)
		}
	}
	return ix, nil
}

// applyStats installs a snapshot's query indicators on the rebuilt cluster,
// validating the ranges the invariants rely on (non-negative, candidates not
// exceeding their owner, candidate count matching the clustering function).
func applyStats(c *Cluster, cs ClusterSnapshot, i int) error {
	if math.IsNaN(cs.Q) || cs.Q < 0 {
		return fmt.Errorf("core: snapshot cluster %d has invalid query indicator %g", i, cs.Q)
	}
	c.q = cs.Q
	if cs.CandQ == nil {
		return nil
	}
	if len(cs.CandQ) != c.cands.len() {
		return fmt.Errorf("core: snapshot cluster %d carries %d candidate indicators, clustering function derives %d",
			i, len(cs.CandQ), c.cands.len())
	}
	for k, q := range cs.CandQ {
		if math.IsNaN(q) || q < 0 || q > cs.Q+1e-9 {
			return fmt.Errorf("core: snapshot cluster %d candidate %d has invalid indicator %g (cluster %g)", i, k, q, cs.Q)
		}
		c.cands.q[k] = q
	}
	return nil
}
