package core

// Differential tests for the batched query plane: a batch must be
// observably identical to the looped single queries it replaces — the same
// per-query result sets in the same order, the same cost-meter totals, and
// bit-identical clustering statistics (cluster Q, candidate q, the decayed
// window, the epoch counter), including when an epoch boundary falls in the
// middle of the batch.

import (
	"math/rand"
	"testing"

	"accluster/internal/geom"
)

// buildTwin builds two structurally identical indexes from the same
// deterministic insert stream.
func buildTwin(t *testing.T, cfg Config, n int, seed int64, maxSize float32) (*Index, *Index) {
	t.Helper()
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(seed))
	for id := 0; id < n; id++ {
		r := randomRect(rng, cfg.Dims, maxSize)
		if err := a.Insert(uint32(id), r); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(uint32(id), r); err != nil {
			t.Fatal(err)
		}
	}
	return a, b
}

// statsSnapshot captures every adaptive indicator the batch path must keep
// equal to the looped singles.
type statsSnapshot struct {
	window  float64
	epoch   int64
	q       []float64
	cands   [][]float64
	nClust  int
	nObject int
}

func snapshotStats(ix *Index) statsSnapshot {
	s := statsSnapshot{window: ix.StatsWindow(), epoch: ix.Epoch(), nClust: ix.Clusters(), nObject: ix.Len()}
	ix.VisitClusters(func(c *Cluster) {
		ix.syncStats(c)
		s.q = append(s.q, c.q)
		s.cands = append(s.cands, append([]float64(nil), c.cands.q...))
	})
	return s
}

func diffStats(t *testing.T, name string, a, b statsSnapshot) {
	t.Helper()
	if a.window != b.window || a.epoch != b.epoch || a.nClust != b.nClust || a.nObject != b.nObject {
		t.Fatalf("%s: window/epoch/shape mismatch: (%g,%d,%d,%d) vs (%g,%d,%d,%d)",
			name, a.window, a.epoch, a.nClust, a.nObject, b.window, b.epoch, b.nClust, b.nObject)
	}
	for i := range a.q {
		if a.q[i] != b.q[i] {
			t.Fatalf("%s: cluster %d Q: %g vs %g", name, i, a.q[i], b.q[i])
		}
		if len(a.cands[i]) != len(b.cands[i]) {
			t.Fatalf("%s: cluster %d candidate count: %d vs %d", name, i, len(a.cands[i]), len(b.cands[i]))
		}
		for k := range a.cands[i] {
			if a.cands[i][k] != b.cands[i][k] {
				t.Fatalf("%s: cluster %d candidate %d q: %g vs %g", name, i, k, a.cands[i][k], b.cands[i][k])
			}
		}
	}
}

// TestSearchBatchDifferential pins the batch read path against looped
// SearchIDsAppendRead on structurally frozen twins: identical per-query id
// sets in identical order, identical meter totals, identical statistics
// after both publications drain — with ReorgEvery chosen so an epoch
// boundary lands inside every batch (BackgroundReorg defers the queue, so
// structure stays frozen and the comparison is exact).
func TestSearchBatchDifferential(t *testing.T) {
	for _, dims := range []int{2, 8} {
		for _, rel := range []geom.Relation{geom.Intersects, geom.ContainedBy, geom.Encloses} {
			cfg := Config{Dims: dims, ReorgEvery: 7, BackgroundReorg: true}
			loop, batch := buildTwin(t, cfg, 2500, int64(40+dims), 0.3)
			rng := rand.New(rand.NewSource(int64(90 + dims)))
			var dst geom.IDBatch
			var single []uint32
			for round := 0; round < 6; round++ {
				nq := []int{1, 3, 17, 64}[round%4]
				qs := make([]geom.Rect, nq)
				for i := range qs {
					if rel == geom.Encloses {
						// Point queries: the SDI case the batch plane targets.
						qs[i] = pointRect(rng, dims)
					} else {
						qs[i] = randomRect(rng, dims, 1)
					}
				}
				loopBefore, batchBefore := loop.Meter(), batch.Meter()
				if err := batch.SearchBatchRead(&dst, qs, rel); err != nil {
					t.Fatal(err)
				}
				for i, q := range qs {
					var err error
					single, err = loop.SearchIDsAppendRead(single[:0], q, rel)
					if err != nil {
						t.Fatal(err)
					}
					got := dst.Query(i)
					if !equalIDs(got, single) {
						t.Fatalf("dims=%d rel=%v round=%d query=%d: batch ids %v, looped %v", dims, rel, round, i, got, single)
					}
				}
				ld := loop.Meter().Sub(loopBefore)
				bd := batch.Meter().Sub(batchBefore)
				if ld != bd {
					t.Fatalf("dims=%d rel=%v round=%d: meter delta mismatch:\nbatch  %+v\nlooped %+v", dims, rel, round, bd, ld)
				}
				loop.DrainStats()
				batch.DrainStats()
				diffStats(t, "after drain", snapshotStats(loop), snapshotStats(batch))
			}
		}
	}
}

// TestSearchIDsBatchSerial pins the exclusive-access batch path against the
// looped serial singles under the same frozen-structure regime.
func TestSearchIDsBatchSerial(t *testing.T) {
	cfg := Config{Dims: 4, ReorgEvery: 5, BackgroundReorg: true}
	loop, batch := buildTwin(t, cfg, 1500, 7, 0.3)
	rng := rand.New(rand.NewSource(8))
	var dst geom.IDBatch
	var single []uint32
	for round := 0; round < 5; round++ {
		qs := make([]geom.Rect, 13)
		for i := range qs {
			qs[i] = randomRect(rng, 4, 1)
		}
		if err := batch.SearchIDsBatch(&dst, qs, geom.Intersects); err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			var err error
			single, err = loop.SearchIDsAppend(single[:0], q, geom.Intersects)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(dst.Query(i), single) {
				t.Fatalf("round=%d query=%d: batch ids differ from looped serial", round, i)
			}
		}
		diffStats(t, "serial", snapshotStats(loop), snapshotStats(batch))
	}
}

// TestSearchBatchUnderReorg runs batches against an actively reorganizing
// index: results must still equal a brute-force shadow (reorganization
// moves objects between clusters, never in or out of the answer).
func TestSearchBatchUnderReorg(t *testing.T) {
	cfg := Config{Dims: 3, ReorgEvery: 20}
	ix := mustNew(t, cfg)
	ref := shadow{}
	rng := rand.New(rand.NewSource(99))
	for id := 0; id < 2000; id++ {
		r := randomRect(rng, 3, 0.4)
		if err := ix.Insert(uint32(id), r); err != nil {
			t.Fatal(err)
		}
		ref[uint32(id)] = r
	}
	var dst geom.IDBatch
	for round := 0; round < 30; round++ {
		qs := make([]geom.Rect, 11)
		for i := range qs {
			qs[i] = randomRect(rng, 3, 1)
		}
		if err := ix.SearchIDsBatch(&dst, qs, geom.Intersects); err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			want := ref.search(q, geom.Intersects)
			if got := sortedCopy(dst.Query(i)); !equalIDs(got, want) {
				t.Fatalf("round=%d query=%d: %d ids, want %d", round, i, len(got), len(want))
			}
		}
	}
	if ix.Epoch() == 0 {
		t.Fatal("reorganization never triggered; test exercised nothing")
	}
}

// TestSearchBatchValidation: an invalid query fails the whole batch before
// any of it executes — no meter charges, no statistics, no partial results.
func TestSearchBatchValidation(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2})
	obj := geom.NewRect(2)
	obj.Min[0], obj.Min[1], obj.Max[0], obj.Max[1] = 0.1, 0.1, 0.9, 0.9
	if err := ix.Insert(1, obj); err != nil {
		t.Fatal(err)
	}
	var dst geom.IDBatch
	full := geom.NewRect(2)
	full.Max[0], full.Max[1] = 1, 1
	qs := []geom.Rect{full, geom.NewRect(3)} // second query: wrong dims
	before := ix.Meter()
	if err := ix.SearchBatchRead(&dst, qs, geom.Intersects); err == nil {
		t.Fatal("want dimension-mismatch error")
	}
	if d := ix.Meter().Sub(before); d.Queries != 0 {
		t.Fatalf("failed batch charged %d queries", d.Queries)
	}
	if ix.StatsBacklog() != 0 {
		t.Fatal("failed batch enqueued statistics")
	}
	if err := ix.SearchBatchRead(&dst, qs, geom.Relation(42)); err == nil {
		t.Fatal("want invalid-relation error")
	}
	// Empty batch: valid, zero queries.
	if err := ix.SearchBatchRead(&dst, nil, geom.Intersects); err != nil {
		t.Fatal(err)
	}
	if dst.Queries() != 0 {
		t.Fatalf("empty batch reports %d queries", dst.Queries())
	}
}

// pointRect builds a degenerate (point) rectangle.
func pointRect(rng *rand.Rand, dims int) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		x := rng.Float32()
		r.Min[d], r.Max[d] = x, x
	}
	return r
}
