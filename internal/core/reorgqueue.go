package core

import "math"

// The reorganization work queue is a max-heap of clusters ordered by the
// benefit estimate cached at each cluster's previous revisit (c.prio): the
// revisits most likely to pay — a profitable merge or materialization —
// happen in the earliest budgeted steps of an epoch, so clustering quality
// under budget pressure degrades from the cheap end first. The heap is
// hand-rolled over a plain slice (no container/heap interface boxing) and
// keeps its backing array across epochs, so steady-state scheduling
// allocates nothing.

// reorgHeap is a max-heap on Cluster.prio.
type reorgHeap []*Cluster

func (h *reorgHeap) push(c *Cluster) {
	*h = append(*h, c)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].prio >= q[i].prio {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (h *reorgHeap) pop() *Cluster {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil // release the reference; the backing array is retained
	q = q[:last]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(q) && q[l].prio > q[best].prio {
			best = l
		}
		if r < len(q) && q[r].prio > q[best].prio {
			best = r
		}
		if best == i {
			break
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
	return top
}

// Epoch-based lazy decay: beginEpoch ages the global window eagerly (one
// multiplication) while every cluster records the epoch its statistics were
// last aged to. Touching a cluster — exploring it in a query, revisiting it
// in a reorganization step, snapshotting it — first applies the deferred
// factor Decay^(epoch - statsEpoch) to its own and its candidates' query
// indicators. A probability q/W therefore always compares like with like,
// and the aging a cluster has experienced by the time a reorganization
// decision reads it is exactly what the synchronous full pass would have
// applied.

// decayFactor returns Decay^delta with fast paths for the common deltas.
func (ix *Index) decayFactor(delta int64) float64 {
	switch delta {
	case 0:
		return 1
	case 1:
		return ix.cfg.Decay
	}
	return math.Pow(ix.cfg.Decay, float64(delta))
}

// syncStats applies the deferred decay to c's query indicators, bringing
// them up to the current epoch.
func (ix *Index) syncStats(c *Cluster) {
	if c.statsEpoch == ix.epoch {
		return
	}
	f := ix.decayFactor(ix.epoch - c.statsEpoch)
	c.statsEpoch = ix.epoch
	c.q *= f
	q := c.cands.q
	for i := range q {
		q[i] *= f
	}
}

// effectiveQ returns c's query indicator as of the current epoch without
// mutating the cluster (read-only probability checks, e.g. insertion
// placement).
func (ix *Index) effectiveQ(c *Cluster) float64 {
	if c.statsEpoch == ix.epoch {
		return c.q
	}
	return c.q * ix.decayFactor(ix.epoch-c.statsEpoch)
}

// syncAllStats brings every cluster up to the current epoch (snapshot and
// invariant paths).
func (ix *Index) syncAllStats() {
	for _, c := range ix.clusters {
		ix.syncStats(c)
	}
}
