package core

import (
	"math/rand"
	"testing"

	"accluster/internal/geom"
)

func TestClusterInfos(t *testing.T) {
	ix := mustNew(t, Config{Dims: 3, ReorgEvery: 25})
	rng := rand.New(rand.NewSource(31))
	for id := uint32(0); id < 3000; id++ {
		if err := ix.Insert(id, randomRect(rng, 3, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		q := randomRect(rng, 3, 0.1)
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	infos := ix.ClusterInfos()
	if len(infos) != ix.Clusters() {
		t.Fatalf("%d infos for %d clusters", len(infos), ix.Clusters())
	}
	root := infos[0]
	if root.Depth != 0 || root.ConstrainedDims != 0 || root.Signature != "{root}" {
		t.Fatalf("root info: %+v", root)
	}
	if root.AccessProbability < 0.99 {
		t.Errorf("root access probability %g, want ~1 (explored by every query)", root.AccessProbability)
	}
	total := 0
	for i, in := range infos {
		total += in.Objects
		if in.AccessProbability < 0 || in.AccessProbability > 1 {
			t.Fatalf("info %d: probability %g", i, in.AccessProbability)
		}
		if i > 0 {
			if in.Depth < 1 {
				t.Fatalf("non-root cluster at depth %d", in.Depth)
			}
			if in.ConstrainedDims < 1 {
				t.Fatalf("non-root cluster without constraints: %+v", in)
			}
		}
		if in.Candidates < 0 || in.Children < 0 {
			t.Fatalf("negative counts: %+v", in)
		}
	}
	if total != ix.Len() {
		t.Fatalf("infos hold %d objects, index %d", total, ix.Len())
	}
}
