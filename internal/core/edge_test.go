package core

import (
	"math/rand"
	"testing"

	"accluster/internal/cost"
	"accluster/internal/geom"
)

func TestDrainAndRefill(t *testing.T) {
	// Empty the index completely after clustering, then refill: clusters
	// must remain structurally sound and answers exact.
	ix := mustNew(t, Config{Dims: 2, ReorgEvery: 15})
	rng := rand.New(rand.NewSource(51))
	for id := uint32(0); id < 1000; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := ix.Search(randomRect(rng, 2, 0.1), geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	for id := uint32(0); id < 1000; id++ {
		if !ix.Delete(id) {
			t.Fatalf("delete %d", id)
		}
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d after drain", ix.Len())
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Queries on the drained index are empty but well-defined; another
	// reorganization round must clean up empty clusters eventually.
	if n, err := ix.Count(randomRect(rng, 2, 0.5), geom.Intersects); err != nil || n != 0 {
		t.Fatalf("drained count = %d, %v", n, err)
	}
	for i := 0; i < 60; i++ {
		if err := ix.Search(randomRect(rng, 2, 0.5), geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	// Refill.
	for id := uint32(5000); id < 6000; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 1000 {
		t.Fatalf("Len = %d after refill", ix.Len())
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyStopKeepsStatisticsConsistent(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2, ReorgEvery: 10})
	rng := rand.New(rand.NewSource(52))
	for id := uint32(0); id < 800; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	full := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}
	for i := 0; i < 50; i++ {
		// Stop after the first hit every time.
		if err := ix.Search(full, geom.Intersects, func(uint32) bool { return false }); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Counts must still be exact afterwards.
	n, err := ix.Count(full, geom.Intersects)
	if err != nil || n != 800 {
		t.Fatalf("count after early stops: %d, %v", n, err)
	}
}

func TestDegenerateObjectsAtDomainBoundary(t *testing.T) {
	// Points at exactly 0 and 1, and the full-domain object, must be
	// storable and retrievable through any amount of reorganization.
	ix := mustNew(t, Config{Dims: 3, ReorgEvery: 5})
	special := []geom.Rect{
		geom.Point([]float32{0, 0, 0}),
		geom.Point([]float32{1, 1, 1}),
		{Min: []float32{0, 0, 0}, Max: []float32{1, 1, 1}},
		{Min: []float32{0, 0.5, 1}, Max: []float32{0, 0.5, 1}},
	}
	for i, r := range special {
		if err := ix.Insert(uint32(i), r); err != nil {
			t.Fatalf("special %d: %v", i, err)
		}
	}
	rng := rand.New(rand.NewSource(53))
	for id := uint32(100); id < 1100; id++ {
		if err := ix.Insert(id, randomRect(rng, 3, 0.4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := ix.Search(randomRect(rng, 3, 0.2), geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	// The full-domain query must return everything, including the
	// boundary objects.
	all := geom.Rect{Min: []float32{0, 0, 0}, Max: []float32{1, 1, 1}}
	n, err := ix.Count(all, geom.Intersects)
	if err != nil || n != 1004 {
		t.Fatalf("full-domain count: %d, %v", n, err)
	}
	// Point-enclosing at the corner finds the objects covering it.
	m, err := ix.Count(geom.Point([]float32{1, 1, 1}), geom.Encloses)
	if err != nil || m < 2 { // the corner point itself + full-domain object
		t.Fatalf("corner enclosing count: %d, %v", m, err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDecayOneNeverForgets(t *testing.T) {
	ix := mustNew(t, Config{Dims: 1, ReorgEvery: 10, Decay: 1})
	for id := uint32(0); id < 100; id++ {
		r := geom.Rect{Min: []float32{0.4}, Max: []float32{0.5}}
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Rect{Min: []float32{0}, Max: []float32{1}}
	for i := 0; i < 40; i++ {
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	// With decay 1 the window keeps the full history.
	if ix.window != 40 {
		t.Errorf("window = %g, want 40", ix.window)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskScenarioFormsCoarserClusters(t *testing.T) {
	build := func(p cost.Params) *Index {
		ix := mustNew(t, Config{Dims: 4, Params: p, ReorgEvery: 25})
		rng := rand.New(rand.NewSource(54))
		for id := uint32(0); id < 6000; id++ {
			if err := ix.Insert(id, randomRect(rng, 4, 0.1)); err != nil {
				t.Fatal(err)
			}
		}
		qrng := rand.New(rand.NewSource(55))
		for i := 0; i < 500; i++ {
			if err := ix.Search(randomRect(qrng, 4, 0.05), geom.Intersects, func(uint32) bool { return true }); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	mem := build(cost.Memory())
	dsk := build(cost.Disk())
	if mem.Clusters() <= dsk.Clusters() {
		t.Errorf("memory clustering (%d) should be finer than disk clustering (%d)",
			mem.Clusters(), dsk.Clusters())
	}
}
