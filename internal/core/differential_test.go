package core

// Differential test for the columnar block-scan query path: on a randomized
// workload of inserts, deletes, updates and queries across all three
// relations, Search, SearchIDs, SearchIDsAppend and Count must return
// exactly the result sets of a brute-force shadow model, and the meter
// counters pinned by the pre-columnar implementation (Queries, Explorations,
// Results) must match values recomputed from first principles: Explorations
// is the number of clusters whose signature matches the query (signature
// pruning is unchanged by the storage layout) and Results is the total
// number of qualifying objects.

import (
	"math/rand"
	"sort"
	"testing"

	"accluster/internal/geom"
)

// shadow is the brute-force reference: a plain id→rectangle map.
type shadow map[uint32]geom.Rect

func (s shadow) search(q geom.Rect, rel geom.Relation) []uint32 {
	var out []uint32
	for id, r := range s {
		if r.Matches(rel, q) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedCopy(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSearchDifferential(t *testing.T) {
	for _, dims := range []int{2, 8} {
		ix := mustNew(t, Config{Dims: dims, ReorgEvery: 50})
		ref := shadow{}
		rng := rand.New(rand.NewSource(int64(1000 + dims)))
		rels := []geom.Relation{geom.Intersects, geom.ContainedBy, geom.Encloses}
		nextID := uint32(0)
		var appendBuf []uint32
		for step := 0; step < 4000; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // insert
				r := randomRect(rng, dims, 0.4)
				if err := ix.Insert(nextID, r); err != nil {
					t.Fatal(err)
				}
				ref[nextID] = r
				nextID++
			case op == 4 && len(ref) > 0: // delete a random live id
				for id := range ref {
					if !ix.Delete(id) {
						t.Fatalf("delete %d: not found", id)
					}
					delete(ref, id)
					break
				}
			case op == 5 && len(ref) > 0: // update a random live id
				for id := range ref {
					r := randomRect(rng, dims, 0.4)
					if err := ix.Update(id, r); err != nil {
						t.Fatal(err)
					}
					ref[id] = r
					break
				}
			default: // query
				q := randomRect(rng, dims, 1)
				rel := rels[rng.Intn(len(rels))]

				// Recompute the exploration count the pre-columnar
				// implementation would report: clusters whose
				// signature matches the query.
				wantExplored := int64(0)
				wantChecked := int64(0)
				ix.VisitClusters(func(c *Cluster) {
					wantChecked++
					if c.Signature().MatchesQuery(q, rel) {
						wantExplored++
					}
				})
				want := ref.search(q, rel)

				before := ix.Meter()
				got, err := ix.SearchIDs(q, rel)
				if err != nil {
					t.Fatal(err)
				}
				if !equalIDs(sortedCopy(got), want) {
					t.Fatalf("dims=%d step=%d rel=%v: SearchIDs mismatch (%d vs %d ids)", dims, step, rel, len(got), len(want))
				}
				d := ix.Meter().Sub(before)
				if d.Queries != 1 {
					t.Fatalf("Queries delta = %d", d.Queries)
				}
				if d.SigChecks != wantChecked {
					t.Fatalf("dims=%d step=%d: SigChecks %d, want %d", dims, step, d.SigChecks, wantChecked)
				}
				if d.Explorations != wantExplored {
					t.Fatalf("dims=%d step=%d rel=%v: Explorations %d, want %d", dims, step, rel, d.Explorations, wantExplored)
				}
				if d.Results != int64(len(want)) {
					t.Fatalf("dims=%d step=%d rel=%v: Results %d, want %d", dims, step, rel, d.Results, len(want))
				}

				// The three retrieval surfaces agree with each other.
				appendBuf = appendBuf[:0]
				appendBuf, err = ix.SearchIDsAppend(appendBuf, q, rel)
				if err != nil {
					t.Fatal(err)
				}
				if !equalIDs(sortedCopy(appendBuf), want) {
					t.Fatalf("dims=%d step=%d rel=%v: SearchIDsAppend mismatch", dims, step, rel)
				}
				n, err := ix.Count(q, rel)
				if err != nil {
					t.Fatal(err)
				}
				if n != len(want) {
					t.Fatalf("dims=%d step=%d rel=%v: Count %d, want %d", dims, step, rel, n, len(want))
				}
				var emitted []uint32
				if err := ix.Search(q, rel, func(id uint32) bool { emitted = append(emitted, id); return true }); err != nil {
					t.Fatal(err)
				}
				if !equalIDs(sortedCopy(emitted), want) {
					t.Fatalf("dims=%d step=%d rel=%v: Search emit mismatch", dims, step, rel)
				}

				// Early-stop semantics: Results counts emitted
				// objects up to and including the one that stopped,
				// and the cost meter charges only clusters explored
				// before the consumer gave up — clusters whose
				// members were never verified add no Seeks,
				// Explorations or transferred bytes (their
				// clustering statistics are still updated; see
				// TestEarlyStopAccounting for the pinned split).
				if len(want) > 1 {
					stopAfter := 1 + rng.Intn(len(want)-1)
					// The queries above may have triggered a
					// reorganization; recount the matching
					// clusters against the current state.
					wantExplored = 0
					ix.VisitClusters(func(c *Cluster) {
						if c.Signature().MatchesQuery(q, rel) {
							wantExplored++
						}
					})
					before = ix.Meter()
					seen := 0
					if err := ix.Search(q, rel, func(uint32) bool { seen++; return seen < stopAfter }); err != nil {
						t.Fatal(err)
					}
					d = ix.Meter().Sub(before)
					if seen != stopAfter || d.Results != int64(stopAfter) {
						t.Fatalf("dims=%d step=%d: early stop emitted %d (Results %d), want %d", dims, step, seen, d.Results, stopAfter)
					}
					if d.Explorations < 1 || d.Explorations > wantExplored {
						t.Fatalf("dims=%d step=%d: early stop Explorations %d, want within [1,%d]", dims, step, d.Explorations, wantExplored)
					}
					if d.Seeks != d.Explorations {
						t.Fatalf("dims=%d step=%d: early stop Seeks %d != Explorations %d", dims, step, d.Seeks, d.Explorations)
					}
				}
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReentrantQueryPanics pins the scratch-reuse contract: an emit callback
// querying the same index must panic instead of silently corrupting the
// in-flight search.
func TestReentrantQueryPanics(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2})
	rng := rand.New(rand.NewSource(1))
	for id := uint32(0); id < 10; id++ {
		if err := ix.Insert(id, randomRect(rng, 2, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}
	defer func() {
		if recover() == nil {
			t.Fatal("reentrant query did not panic")
		}
	}()
	_ = ix.Search(q, geom.Intersects, func(uint32) bool {
		_, _ = ix.Count(q, geom.Intersects)
		return true
	})
}
