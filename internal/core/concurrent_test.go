package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"accluster/internal/geom"
)

// loadIndex fills an index with n random objects.
func loadIndex(t *testing.T, ix *Index, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for id := 0; id < n; id++ {
		if err := ix.Insert(uint32(id), randomRect(rng, ix.Dims(), 0.4)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentStatsMatchSerial pins the statistics-publication contract:
// running the same query set through the concurrent read path (SearchRead +
// one DrainStats) must leave exactly the statistics the serial path leaves —
// the increments are integer additions, so any interleaving commutes. The
// configuration keeps every query inside one epoch (no decay applied), the
// regime where equality is exact rather than up to float rounding.
func TestConcurrentStatsMatchSerial(t *testing.T) {
	const (
		dims    = 6
		objects = 4000
		queries = 256
	)
	cfg := Config{Dims: dims, ReorgEvery: 1 << 30}
	build := func() *Index {
		ix := mustNew(t, cfg)
		loadIndex(t, ix, objects, 7)
		// Converge a clustering first so queries touch many clusters.
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 300; i++ {
			if err := ix.Search(randomRect(rng, dims, 0.2), geom.Intersects, func(uint32) bool { return true }); err != nil {
				t.Fatal(err)
			}
		}
		ix.Reorganize()
		return ix
	}
	qs := make([]geom.Rect, queries)
	rng := rand.New(rand.NewSource(9))
	for i := range qs {
		qs[i] = randomRect(rng, dims, 0.25)
	}

	serial := build()
	for _, q := range qs {
		if err := serial.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}

	conc := build()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(qs); i += 8 {
				if err := conc.SearchRead(qs[i], geom.Intersects, func(uint32) bool { return true }); err != nil {
					t.Errorf("concurrent query %d: %v", i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	conc.DrainStats()

	if sw, cw := serial.StatsWindow(), conc.StatsWindow(); sw != cw {
		t.Fatalf("statistics window: serial %g, concurrent %g", sw, cw)
	}
	// No epoch rolled and no mutation ran between the builds, so the
	// cluster sets are identical and Snapshot (breadth-first, deterministic)
	// aligns positionally.
	ss, cs := serial.Snapshot(), conc.Snapshot()
	if len(ss) != len(cs) {
		t.Fatalf("cluster count: serial %d, concurrent %d", len(ss), len(cs))
	}
	for i := range ss {
		if ss[i].Signature.String() != cs[i].Signature.String() {
			t.Fatalf("cluster %d: signature %s vs %s", i, ss[i].Signature, cs[i].Signature)
		}
		if ss[i].Q != cs[i].Q {
			t.Fatalf("cluster %d: Q %g vs %g", i, ss[i].Q, cs[i].Q)
		}
		for k := range ss[i].CandQ {
			if ss[i].CandQ[k] != cs[i].CandQ[k] {
				t.Fatalf("cluster %d candidate %d: q %g vs %g", i, k, ss[i].CandQ[k], cs[i].CandQ[k])
			}
		}
	}
	sm, cm := serial.Meter(), conc.Meter()
	if sm != cm {
		t.Fatalf("meters diverge:\nserial     %+v\nconcurrent %+v", sm, cm)
	}
}

// TestConcurrentReadAnswersMatchSerial pins exactness under concurrency:
// with no mutations interleaved, concurrent readers must return the serial
// answer sets.
func TestConcurrentReadAnswersMatchSerial(t *testing.T) {
	const dims = 5
	ix := mustNew(t, Config{Dims: dims})
	loadIndex(t, ix, 3000, 17)
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 200; i++ {
		if err := ix.Search(randomRect(rng, dims, 0.3), geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([]geom.Rect, 64)
	rels := make([]geom.Relation, len(qs))
	want := make([][]uint32, len(qs))
	for i := range qs {
		qs[i] = randomRect(rng, dims, 0.35)
		rels[i] = geom.Relation(i % 3)
		ids, err := ix.SearchIDs(qs[i], rels[i])
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		want[i] = ids
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []uint32
			for i := range qs {
				got, err := ix.SearchIDsAppendRead(buf[:0], qs[i], rels[i])
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				buf = got
				sorted := append([]uint32(nil), got...)
				sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
				if len(sorted) != len(want[i]) {
					t.Errorf("query %d: %d results, want %d", i, len(sorted), len(want[i]))
					return
				}
				for k := range sorted {
					if sorted[k] != want[i][k] {
						t.Errorf("query %d: answer mismatch at %d", i, k)
						return
					}
				}
				// Counting must agree with retrieval under concurrency too.
				n, err := ix.CountRead(qs[i], rels[i])
				if err != nil || n != len(want[i]) {
					t.Errorf("query %d: count %d (%v), want %d", i, n, err, len(want[i]))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ix.DrainStats()
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainStatsBacklog exercises the mailbox paths: deltas accumulate
// while no exclusive holder runs, then one drain applies them all in
// enqueue order, and the backlog gauge tracks.
func TestDrainStatsBacklog(t *testing.T) {
	ix := mustNew(t, Config{Dims: 3, ReorgEvery: 1 << 30})
	loadIndex(t, ix, 500, 27)
	q := geom.Rect{Min: []float32{0, 0, 0}, Max: []float32{1, 1, 1}}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := ix.CountRead(q, geom.Intersects); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.StatsBacklog(); got != n {
		t.Fatalf("backlog %d, want %d", got, n)
	}
	ix.DrainStats()
	if got := ix.StatsBacklog(); got != 0 {
		t.Fatalf("backlog %d after drain", got)
	}
	if w := ix.StatsWindow(); w != n {
		t.Fatalf("window %g, want %d", w, n)
	}
	if q := ix.Meter().Queries; q != n {
		t.Fatalf("meter queries %d, want %d", q, n)
	}
}

// TestTryDrainStatsRespectsReaders pins the opportunistic publication
// policy: below the watermark a held lock skips publication entirely; the
// deltas survive for the next exclusive holder.
func TestTryDrainStatsRespectsReaders(t *testing.T) {
	ix := mustNew(t, Config{Dims: 2, ReorgEvery: 1 << 30})
	loadIndex(t, ix, 100, 37)
	q := geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}
	if _, err := ix.CountRead(q, geom.Intersects); err != nil {
		t.Fatal(err)
	}
	var mu sync.RWMutex
	mu.RLock()
	//acvet:ignore lockdiscipline deliberately drains under the read lock to pin the blocked-drain policy
	if ix.TryDrainStats(&mu) {
		t.Fatal("TryDrainStats reported reorg work on a blocked drain")
	}
	if ix.StatsBacklog() != 1 {
		t.Fatalf("delta lost: backlog %d", ix.StatsBacklog())
	}
	mu.RUnlock()
	ix.TryDrainStats(&mu)
	if ix.StatsBacklog() != 0 {
		t.Fatalf("delta not applied: backlog %d", ix.StatsBacklog())
	}
	if w := ix.StatsWindow(); w != 1 {
		t.Fatalf("window %g, want 1", w)
	}
}
