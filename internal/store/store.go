// Package store persists an adaptive clustering database following the
// paper's disk layout (§6): every cluster is stored sequentially with
// 20–30% reserved slots at its end (so at least 70% storage utilization and
// no cluster move on most insertions), cluster signatures are stored with
// the members, and a directory block at the front of the device records the
// position of each cluster for fail recovery. Performance indicators are not
// persisted — new statistics are gathered after recovery, as the paper
// permits.
//
// The on-device format (little endian):
//
//	header  : magic "ACDB", version, dims, cluster count,
//	          directory length, directory CRC32, header CRC32
//	directory: per cluster — parent index, member count, capacity
//	          (count + reserve), region offset, region CRC32, signature
//	          (4·dims float32)
//	regions : per cluster — ids [capacity]uint32, coords
//	          [capacity·2·dims]float32 (only count slots are meaningful)
//
// Save writes a full checkpoint; Load validates every checksum and rebuilds
// the index via core.Restore.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"accluster/internal/core"
	"accluster/internal/sig"
)

const (
	magic      = 0x41434442 // "ACDB"
	version    = 1
	headerSize = 28
)

// ErrCorrupt wraps all integrity failures detected by Load.
type CorruptError struct{ Reason string }

func (e *CorruptError) Error() string { return "store: corrupt database: " + e.Reason }

func corrupt(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// reserveSlots implements the paper's 20–30% reservation rule: capacity is
// 125% of the live size (≥ 80% utilization), with at least one free slot.
func reserveSlots(n int) int {
	extra := n / 4
	if extra < 1 {
		extra = 1
	}
	return n + extra
}

// entrySize returns the directory entry size for the given dimensionality.
func entrySize(dims int) int {
	return 4 + 4 + 4 + 8 + 4 + 16*dims // parent, count, capacity, offset, crc, signature
}

// regionSize returns the byte size of a cluster region with the given
// capacity.
func regionSize(capacity, dims int) int {
	return capacity*4 + capacity*2*dims*4
}

// Save checkpoints the index onto the device, replacing any previous
// content.
func Save(ix *core.Index, dev Device) error {
	snap := ix.Snapshot()
	dims := ix.Dims()
	es := entrySize(dims)
	dirLen := len(snap) * es

	// Lay out the regions after header + directory.
	offsets := make([]int64, len(snap))
	caps := make([]int, len(snap))
	next := int64(headerSize + dirLen)
	for i, cs := range snap {
		offsets[i] = next
		caps[i] = reserveSlots(len(cs.IDs))
		next += int64(regionSize(caps[i], dims))
	}

	dir := make([]byte, dirLen)
	for i, cs := range snap {
		region := make([]byte, regionSize(caps[i], dims))
		for k, id := range cs.IDs {
			binary.LittleEndian.PutUint32(region[k*4:], id)
		}
		coordBase := caps[i] * 4
		for k, v := range cs.Data {
			binary.LittleEndian.PutUint32(region[coordBase+k*4:], math.Float32bits(v))
		}
		if _, err := dev.WriteAt(region, offsets[i]); err != nil {
			return fmt.Errorf("store: write cluster %d: %w", i, err)
		}
		e := dir[i*es:]
		binary.LittleEndian.PutUint32(e[0:], uint32(int32(cs.Parent)))
		binary.LittleEndian.PutUint32(e[4:], uint32(len(cs.IDs)))
		binary.LittleEndian.PutUint32(e[8:], uint32(caps[i]))
		binary.LittleEndian.PutUint64(e[12:], uint64(offsets[i]))
		binary.LittleEndian.PutUint32(e[20:], crc32.ChecksumIEEE(region))
		sigBase := 24
		for d := 0; d < dims; d++ {
			binary.LittleEndian.PutUint32(e[sigBase+d*16:], math.Float32bits(cs.Signature.ALo[d]))
			binary.LittleEndian.PutUint32(e[sigBase+d*16+4:], math.Float32bits(cs.Signature.AHi[d]))
			binary.LittleEndian.PutUint32(e[sigBase+d*16+8:], math.Float32bits(cs.Signature.BLo[d]))
			binary.LittleEndian.PutUint32(e[sigBase+d*16+12:], math.Float32bits(cs.Signature.BHi[d]))
		}
	}
	if _, err := dev.WriteAt(dir, headerSize); err != nil {
		return fmt.Errorf("store: write directory: %w", err)
	}

	head := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(head[0:], magic)
	binary.LittleEndian.PutUint32(head[4:], version)
	binary.LittleEndian.PutUint32(head[8:], uint32(dims))
	binary.LittleEndian.PutUint32(head[12:], uint32(len(snap)))
	binary.LittleEndian.PutUint32(head[16:], uint32(dirLen))
	binary.LittleEndian.PutUint32(head[20:], crc32.ChecksumIEEE(dir))
	binary.LittleEndian.PutUint32(head[24:], crc32.ChecksumIEEE(head[:24]))
	if _, err := dev.WriteAt(head, 0); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	if err := dev.Truncate(next); err != nil {
		return fmt.Errorf("store: truncate: %w", err)
	}
	return dev.Sync()
}

// DirEntry describes one cluster's placement on the device.
type DirEntry struct {
	// Signature is the cluster's grouping signature.
	Signature sig.Signature
	// Parent is the index of the parent cluster (-1 for the root).
	Parent int
	// Count is the number of live members.
	Count int
	// Capacity is the number of slots in the region (count + reserve).
	Capacity int
	// Offset is the region's byte offset on the device.
	Offset int64
	// CRC is the region checksum.
	CRC uint32
}

// RegionBytes returns the byte size of the entry's on-device region.
func (e DirEntry) RegionBytes(dims int) int { return regionSize(e.Capacity, dims) }

// ReadDirectory validates the header and directory checksums and returns the
// cluster directory and dimensionality. It reads only the header and
// directory blocks, not the cluster regions — this is the in-memory state a
// disk-based deployment keeps (§5.ii: "signatures ... managed in memory,
// while the cluster members are stored on external support").
func ReadDirectory(dev Device) ([]DirEntry, int, error) {
	head := make([]byte, headerSize)
	if _, err := dev.ReadAt(head, 0); err != nil {
		return nil, 0, corrupt("short header: %v", err)
	}
	if crc32.ChecksumIEEE(head[:24]) != binary.LittleEndian.Uint32(head[24:]) {
		return nil, 0, corrupt("header checksum mismatch")
	}
	if binary.LittleEndian.Uint32(head[0:]) != magic {
		return nil, 0, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != version {
		return nil, 0, corrupt("unsupported version %d", v)
	}
	dims := int(binary.LittleEndian.Uint32(head[8:]))
	nClusters := int(binary.LittleEndian.Uint32(head[12:]))
	dirLen := int(binary.LittleEndian.Uint32(head[16:]))
	if dims < 1 || nClusters < 1 {
		return nil, 0, corrupt("implausible geometry: dims=%d clusters=%d", dims, nClusters)
	}
	es := entrySize(dims)
	if dirLen != nClusters*es {
		return nil, 0, corrupt("directory length %d does not match %d clusters", dirLen, nClusters)
	}
	dir := make([]byte, dirLen)
	if _, err := dev.ReadAt(dir, headerSize); err != nil {
		return nil, 0, corrupt("short directory: %v", err)
	}
	if crc32.ChecksumIEEE(dir) != binary.LittleEndian.Uint32(head[20:]) {
		return nil, 0, corrupt("directory checksum mismatch")
	}
	entries := make([]DirEntry, nClusters)
	for i := 0; i < nClusters; i++ {
		e := dir[i*es:]
		entry := DirEntry{
			Parent:   int(int32(binary.LittleEndian.Uint32(e[0:]))),
			Count:    int(binary.LittleEndian.Uint32(e[4:])),
			Capacity: int(binary.LittleEndian.Uint32(e[8:])),
			Offset:   int64(binary.LittleEndian.Uint64(e[12:])),
			CRC:      binary.LittleEndian.Uint32(e[20:]),
		}
		if entry.Count > entry.Capacity || entry.Capacity > 1<<30 {
			return nil, 0, corrupt("cluster %d: count %d exceeds capacity %d", i, entry.Count, entry.Capacity)
		}
		s := sig.Root(dims)
		sigBase := 24
		for d := 0; d < dims; d++ {
			s.ALo[d] = math.Float32frombits(binary.LittleEndian.Uint32(e[sigBase+d*16:]))
			s.AHi[d] = math.Float32frombits(binary.LittleEndian.Uint32(e[sigBase+d*16+4:]))
			s.BLo[d] = math.Float32frombits(binary.LittleEndian.Uint32(e[sigBase+d*16+8:]))
			s.BHi[d] = math.Float32frombits(binary.LittleEndian.Uint32(e[sigBase+d*16+12:]))
		}
		entry.Signature = s
		entries[i] = entry
	}
	return entries, dims, nil
}

// ReadRegion reads and verifies one cluster region, returning the member ids
// and flat coordinates.
func ReadRegion(dev Device, e DirEntry, dims int) ([]uint32, []float32, error) {
	region := make([]byte, regionSize(e.Capacity, dims))
	if _, err := dev.ReadAt(region, e.Offset); err != nil {
		return nil, nil, corrupt("short region at %d: %v", e.Offset, err)
	}
	if crc32.ChecksumIEEE(region) != e.CRC {
		return nil, nil, corrupt("region checksum mismatch at %d", e.Offset)
	}
	ids := make([]uint32, e.Count)
	for k := range ids {
		ids[k] = binary.LittleEndian.Uint32(region[k*4:])
	}
	coordBase := e.Capacity * 4
	data := make([]float32, e.Count*2*dims)
	for k := range data {
		data[k] = math.Float32frombits(binary.LittleEndian.Uint32(region[coordBase+k*4:]))
	}
	return ids, data, nil
}

// Load validates the device content and rebuilds the index. cfg supplies the
// runtime parameters (scenario, division factor, …); its Dims must match the
// stored dimensionality or be zero to adopt it.
func Load(dev Device, cfg core.Config) (*core.Index, error) {
	entries, dims, err := ReadDirectory(dev)
	if err != nil {
		return nil, err
	}
	if cfg.Dims == 0 {
		cfg.Dims = dims
	}
	if cfg.Dims != dims {
		return nil, fmt.Errorf("store: database has %d dims, config wants %d", dims, cfg.Dims)
	}
	snap := make([]core.ClusterSnapshot, len(entries))
	for i, e := range entries {
		ids, data, err := ReadRegion(dev, e, dims)
		if err != nil {
			return nil, err
		}
		snap[i] = core.ClusterSnapshot{Signature: e.Signature, Parent: e.Parent, IDs: ids, Data: data}
	}
	ix, err := core.Restore(cfg, snap)
	if err != nil {
		return nil, corrupt("restore: %v", err)
	}
	return ix, nil
}
