// Package store persists an adaptive clustering database following the
// paper's disk layout (§6): every cluster is stored sequentially with
// 20–30% reserved slots at its end (so at least 70% storage utilization and
// no cluster move on most insertions), cluster signatures are stored with
// the members, and a directory block at the front of the device records the
// position of each cluster for fail recovery. Since format version 2 the
// adaptive performance indicators are persisted as well, so recovery resumes
// adaptation warm.
//
// The on-device format (little endian):
//
//	header  : magic "ACDB", version, dims, cluster count,
//	          directory length, directory CRC32,
//	          [v2+] stats length, stats CRC32, division factor,
//	          header CRC32
//	directory: per cluster — parent index, member count, capacity
//	          (count + reserve), region offset, region CRC32, signature
//	          (4·dims float32)
//	stats   : [v2+] statistics window float64, then per cluster — query
//	          indicator float64, candidate count uint32, candidate query
//	          indicators [count]float64
//	regions : per cluster — ids [capacity]uint32, coords
//	          [capacity·2·dims]float32 (only count slots are meaningful)
//
// Version 2 adds the adaptive query statistics (departing from the paper's
// "optional to save" stance: a cold restart re-learns the query distribution
// and re-churns the clustering). The statistics block records the division
// factor that enumerated the candidate sets; a load under a different factor
// skips the block and restores cold, and version-1 segments (no block at
// all) keep loading unchanged.
//
// Save writes a full checkpoint; Load validates every checksum and rebuilds
// the index via core.Restore.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"slices"
	"sync"

	"accluster/internal/core"
	"accluster/internal/sig"
)

const (
	magic      = 0x41434442 // "ACDB"
	version    = 1          // pre-statistics format (no stats block)
	version2   = 2          // adds the adaptive-statistics block
	headerSize = 28         // version-1 header bytes
	headerV2   = 40         // version-2 header bytes
)

// header is the decoded, version-independent device header.
type header struct {
	version   int
	dims      int
	nClusters int
	dirLen    int
	dirCRC    uint32
	// Version-2 fields (zero for version 1).
	statsLen       int
	statsCRC       uint32
	divisionFactor int
	size           int // header bytes on device
}

// ErrCorrupt is the sentinel matched by errors.Is for every integrity
// failure (checksum mismatch, truncation, implausible geometry) detected by
// Load, Verify and the manifest readers. It distinguishes corruption — the
// stored bytes are wrong — from plain I/O errors, so callers can decide
// between salvage and retry.
var ErrCorrupt = errors.New("corrupt database")

// CorruptError is the concrete error carrying the corruption diagnosis;
// match with errors.As for the reason, or errors.Is(err, ErrCorrupt) to
// classify.
type CorruptError struct{ Reason string }

func (e *CorruptError) Error() string { return "store: corrupt database: " + e.Reason }

// Unwrap makes every CorruptError match ErrCorrupt under errors.Is.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func corrupt(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// reserveSlots implements the paper's 20–30% reservation rule: capacity is
// 125% of the live size (≥ 80% utilization), with at least one free slot.
func reserveSlots(n int) int {
	extra := n / 4
	if extra < 1 {
		extra = 1
	}
	return n + extra
}

// entrySize returns the directory entry size for the given dimensionality.
func entrySize(dims int) int {
	return 4 + 4 + 4 + 8 + 4 + 16*dims // parent, count, capacity, offset, crc, signature
}

// regionSize returns the byte size of a cluster region with the given
// capacity.
func regionSize(capacity, dims int) int {
	return capacity*4 + capacity*2*dims*4
}

// statsBlockSize returns the byte size of the version-2 statistics block.
func statsBlockSize(snap []core.ClusterSnapshot) int {
	n := 8 // window
	for _, cs := range snap {
		n += 8 + 4 + 8*len(cs.CandQ)
	}
	return n
}

// encodeStats renders the version-2 statistics block.
func encodeStats(snap []core.ClusterSnapshot, window float64) []byte {
	buf := make([]byte, statsBlockSize(snap))
	binary.LittleEndian.PutUint64(buf, math.Float64bits(window))
	off := 8
	for _, cs := range snap {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(cs.Q))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(len(cs.CandQ)))
		off += 12
		for _, q := range cs.CandQ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(q))
			off += 8
		}
	}
	return buf
}

// decodeStats parses a statistics block into the snapshot's Q/CandQ fields
// and returns the window.
func decodeStats(buf []byte, snap []core.ClusterSnapshot) (float64, error) {
	if len(buf) < 8 {
		return 0, corrupt("statistics block truncated")
	}
	window := math.Float64frombits(binary.LittleEndian.Uint64(buf))
	off := 8
	for i := range snap {
		if off+12 > len(buf) {
			return 0, corrupt("statistics block truncated at cluster %d", i)
		}
		snap[i].Q = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		ncand := int(binary.LittleEndian.Uint32(buf[off+8:]))
		off += 12
		if ncand < 0 || off+8*ncand > len(buf) {
			return 0, corrupt("statistics block truncated at cluster %d candidates", i)
		}
		qs := make([]float64, ncand)
		for k := range qs {
			qs[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		snap[i].CandQ = qs
	}
	if off != len(buf) {
		return 0, corrupt("statistics block has %d trailing bytes", len(buf)-off)
	}
	return window, nil
}

// Save checkpoints the index onto the device in the version-2 format,
// replacing any previous content.
func Save(ix *core.Index, dev Device) error {
	snap := ix.Snapshot()
	dims := ix.Dims()
	es := entrySize(dims)
	dirLen := len(snap) * es
	stats := encodeStats(snap, ix.StatsWindow())

	// Lay out the regions after header + directory + statistics.
	offsets := make([]int64, len(snap))
	caps := make([]int, len(snap))
	next := int64(headerV2 + dirLen + len(stats))
	for i, cs := range snap {
		offsets[i] = next
		caps[i] = reserveSlots(len(cs.IDs))
		next += int64(regionSize(caps[i], dims))
	}

	dir := make([]byte, dirLen)
	for i, cs := range snap {
		region := make([]byte, regionSize(caps[i], dims))
		for k, id := range cs.IDs {
			binary.LittleEndian.PutUint32(region[k*4:], id)
		}
		coordBase := caps[i] * 4
		for k, v := range cs.Data {
			binary.LittleEndian.PutUint32(region[coordBase+k*4:], math.Float32bits(v))
		}
		if _, err := dev.WriteAt(region, offsets[i]); err != nil {
			return fmt.Errorf("store: write cluster %d: %w", i, err)
		}
		e := dir[i*es:]
		binary.LittleEndian.PutUint32(e[0:], uint32(int32(cs.Parent)))
		binary.LittleEndian.PutUint32(e[4:], uint32(len(cs.IDs)))
		binary.LittleEndian.PutUint32(e[8:], uint32(caps[i]))
		binary.LittleEndian.PutUint64(e[12:], uint64(offsets[i]))
		binary.LittleEndian.PutUint32(e[20:], crc32.ChecksumIEEE(region))
		sigBase := 24
		for d := 0; d < dims; d++ {
			binary.LittleEndian.PutUint32(e[sigBase+d*16:], math.Float32bits(cs.Signature.ALo[d]))
			binary.LittleEndian.PutUint32(e[sigBase+d*16+4:], math.Float32bits(cs.Signature.AHi[d]))
			binary.LittleEndian.PutUint32(e[sigBase+d*16+8:], math.Float32bits(cs.Signature.BLo[d]))
			binary.LittleEndian.PutUint32(e[sigBase+d*16+12:], math.Float32bits(cs.Signature.BHi[d]))
		}
	}
	if _, err := dev.WriteAt(dir, headerV2); err != nil {
		return fmt.Errorf("store: write directory: %w", err)
	}
	if _, err := dev.WriteAt(stats, int64(headerV2+dirLen)); err != nil {
		return fmt.Errorf("store: write statistics: %w", err)
	}

	head := make([]byte, headerV2)
	binary.LittleEndian.PutUint32(head[0:], magic)
	binary.LittleEndian.PutUint32(head[4:], version2)
	binary.LittleEndian.PutUint32(head[8:], uint32(dims))
	binary.LittleEndian.PutUint32(head[12:], uint32(len(snap)))
	binary.LittleEndian.PutUint32(head[16:], uint32(dirLen))
	binary.LittleEndian.PutUint32(head[20:], crc32.ChecksumIEEE(dir))
	binary.LittleEndian.PutUint32(head[24:], uint32(len(stats)))
	binary.LittleEndian.PutUint32(head[28:], crc32.ChecksumIEEE(stats))
	binary.LittleEndian.PutUint32(head[32:], uint32(ix.Config().DivisionFactor))
	binary.LittleEndian.PutUint32(head[36:], crc32.ChecksumIEEE(head[:36]))
	if _, err := dev.WriteAt(head, 0); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	if err := dev.Truncate(next); err != nil {
		return fmt.Errorf("store: truncate: %w", err)
	}
	return dev.Sync()
}

// DirEntry describes one cluster's placement on the device.
type DirEntry struct {
	// Signature is the cluster's grouping signature.
	Signature sig.Signature
	// Parent is the index of the parent cluster (-1 for the root).
	Parent int
	// Count is the number of live members.
	Count int
	// Capacity is the number of slots in the region (count + reserve).
	Capacity int
	// Offset is the region's byte offset on the device.
	Offset int64
	// CRC is the region checksum.
	CRC uint32
}

// RegionBytes returns the byte size of the entry's on-device region.
func (e DirEntry) RegionBytes(dims int) int { return regionSize(e.Capacity, dims) }

// readHeader decodes and validates the device header of either format
// version.
func readHeader(dev Device) (header, error) {
	// The version field decides the header size; peek the fixed prefix
	// first.
	pre := make([]byte, 8)
	if _, err := dev.ReadAt(pre, 0); err != nil {
		return header{}, corrupt("short header: %v", err)
	}
	if binary.LittleEndian.Uint32(pre[0:]) != magic {
		return header{}, corrupt("bad magic")
	}
	h := header{version: int(binary.LittleEndian.Uint32(pre[4:]))}
	switch h.version {
	case version:
		h.size = headerSize
	case version2:
		h.size = headerV2
	default:
		return header{}, corrupt("unsupported version %d", h.version)
	}
	head := make([]byte, h.size)
	if _, err := dev.ReadAt(head, 0); err != nil {
		return header{}, corrupt("short header: %v", err)
	}
	if crc32.ChecksumIEEE(head[:h.size-4]) != binary.LittleEndian.Uint32(head[h.size-4:]) {
		return header{}, corrupt("header checksum mismatch")
	}
	h.dims = int(binary.LittleEndian.Uint32(head[8:]))
	h.nClusters = int(binary.LittleEndian.Uint32(head[12:]))
	h.dirLen = int(binary.LittleEndian.Uint32(head[16:]))
	h.dirCRC = binary.LittleEndian.Uint32(head[20:])
	if h.version >= version2 {
		h.statsLen = int(binary.LittleEndian.Uint32(head[24:]))
		h.statsCRC = binary.LittleEndian.Uint32(head[28:])
		h.divisionFactor = int(binary.LittleEndian.Uint32(head[32:]))
	}
	if h.dims < 1 || h.nClusters < 1 {
		return header{}, corrupt("implausible geometry: dims=%d clusters=%d", h.dims, h.nClusters)
	}
	if h.dirLen != h.nClusters*entrySize(h.dims) {
		return header{}, corrupt("directory length %d does not match %d clusters", h.dirLen, h.nClusters)
	}
	return h, nil
}

// ReadDirectory validates the header and directory checksums and returns the
// cluster directory and dimensionality. It reads only the header and
// directory blocks, not the cluster regions — this is the in-memory state a
// disk-based deployment keeps (§5.ii: "signatures ... managed in memory,
// while the cluster members are stored on external support").
func ReadDirectory(dev Device) ([]DirEntry, int, error) {
	h, err := readHeader(dev)
	if err != nil {
		return nil, 0, err
	}
	entries, err := readDirEntries(dev, h)
	return entries, h.dims, err
}

// readDirEntries reads and validates the directory described by an already
// decoded header.
func readDirEntries(dev Device, h header) ([]DirEntry, error) {
	dims, nClusters := h.dims, h.nClusters
	dir := make([]byte, h.dirLen)
	if _, err := dev.ReadAt(dir, int64(h.size)); err != nil {
		return nil, corrupt("short directory: %v", err)
	}
	if crc32.ChecksumIEEE(dir) != h.dirCRC {
		return nil, corrupt("directory checksum mismatch")
	}
	es := entrySize(dims)
	entries := make([]DirEntry, nClusters)
	for i := 0; i < nClusters; i++ {
		e := dir[i*es:]
		entry := DirEntry{
			Parent:   int(int32(binary.LittleEndian.Uint32(e[0:]))),
			Count:    int(binary.LittleEndian.Uint32(e[4:])),
			Capacity: int(binary.LittleEndian.Uint32(e[8:])),
			Offset:   int64(binary.LittleEndian.Uint64(e[12:])),
			CRC:      binary.LittleEndian.Uint32(e[20:]),
		}
		if entry.Count > entry.Capacity || entry.Capacity > 1<<30 {
			return nil, corrupt("cluster %d: count %d exceeds capacity %d", i, entry.Count, entry.Capacity)
		}
		s := sig.Root(dims)
		sigBase := 24
		for d := 0; d < dims; d++ {
			s.ALo[d] = math.Float32frombits(binary.LittleEndian.Uint32(e[sigBase+d*16:]))
			s.AHi[d] = math.Float32frombits(binary.LittleEndian.Uint32(e[sigBase+d*16+4:]))
			s.BLo[d] = math.Float32frombits(binary.LittleEndian.Uint32(e[sigBase+d*16+8:]))
			s.BHi[d] = math.Float32frombits(binary.LittleEndian.Uint32(e[sigBase+d*16+12:]))
		}
		entry.Signature = s
		entries[i] = entry
	}
	return entries, nil
}

// regionBufs pools the raw device images ReadRegionInto stages regions
// through, so repeated region reads allocate nothing once the pool holds a
// large-enough buffer.
var regionBufs = sync.Pool{New: func() any { return new([]byte) }}

// ReadRegion reads and verifies one cluster region, returning the member ids
// and flat coordinates in fresh slices. It is a thin wrapper over
// ReadRegionInto for callers without buffers to reuse.
func ReadRegion(dev Device, e DirEntry, dims int) ([]uint32, []float32, error) {
	return ReadRegionInto(dev, e, dims, nil, nil)
}

// ReadRegionInto reads and verifies one cluster region, appending the member
// ids and flat (row-major) coordinates to the caller's buffers and returning
// the extended slices. Reusing the returned slices across calls makes
// repeated region reads allocation-free at steady state; the raw device
// image is staged through an internal pool.
func ReadRegionInto(dev Device, e DirEntry, dims int, ids []uint32, data []float32) ([]uint32, []float32, error) {
	bufp := regionBufs.Get().(*[]byte)
	defer regionBufs.Put(bufp)
	size := regionSize(e.Capacity, dims)
	if cap(*bufp) < size {
		*bufp = make([]byte, size)
	}
	region := (*bufp)[:size]
	if _, err := dev.ReadAt(region, e.Offset); err != nil {
		return ids, data, corrupt("short region at %d: %v", e.Offset, err)
	}
	if crc32.ChecksumIEEE(region) != e.CRC {
		return ids, data, corrupt("region checksum mismatch at %d", e.Offset)
	}
	// Presize once: nil-buffer callers (ReadRegion, Load) get the single
	// exact-size allocation per slice they always had, not append growth.
	ids = slices.Grow(ids, e.Count)
	data = slices.Grow(data, e.Count*2*dims)
	for k := 0; k < e.Count; k++ {
		ids = append(ids, binary.LittleEndian.Uint32(region[k*4:]))
	}
	coordBase := e.Capacity * 4
	for k := 0; k < e.Count*2*dims; k++ {
		data = append(data, math.Float32frombits(binary.LittleEndian.Uint32(region[coordBase+k*4:])))
	}
	return ids, data, nil
}

// DecodeRegionColumns validates a region image (the exact on-device bytes of
// e's region, e.g. one slice of a coalesced read) and decodes the live
// members into caller-provided structure-of-arrays columns: ids[k] with
// lo[d][k], hi[d][k]. ids must have length e.Count and lo/hi must hold dims
// columns of that length — the layout internal/blockcache.Region.Reset
// prepares. The transpose from the device's row-major record layout happens
// here, once per device read, so every verification over the decoded region
// runs on contiguous columns.
func DecodeRegionColumns(region []byte, e DirEntry, dims int, ids []uint32, lo, hi [][]float32) error {
	if len(region) != regionSize(e.Capacity, dims) {
		return corrupt("region image at %d has %d bytes, want %d", e.Offset, len(region), regionSize(e.Capacity, dims))
	}
	if crc32.ChecksumIEEE(region) != e.CRC {
		return corrupt("region checksum mismatch at %d", e.Offset)
	}
	for k := 0; k < e.Count; k++ {
		ids[k] = binary.LittleEndian.Uint32(region[k*4:])
	}
	coordBase := e.Capacity * 4
	stride := 2 * dims * 4
	for d := 0; d < dims; d++ {
		loCol, hiCol := lo[d][:e.Count], hi[d][:e.Count]
		base := coordBase + 2*d*4
		for k := 0; k < e.Count; k++ {
			off := base + k*stride
			loCol[k] = math.Float32frombits(binary.LittleEndian.Uint32(region[off:]))
			hiCol[k] = math.Float32frombits(binary.LittleEndian.Uint32(region[off+4:]))
		}
	}
	return nil
}

// Load validates the device content and rebuilds the index. cfg supplies the
// runtime parameters (scenario, division factor, …); its Dims must match the
// stored dimensionality or be zero to adopt it. Version-2 segments restore
// the adaptive query statistics when the stored division factor matches the
// effective configuration (the candidate enumeration they index into is a
// function of that factor); otherwise — and for version-1 segments — the
// index restores cold and re-gathers statistics, as the paper permits.
func Load(dev Device, cfg core.Config) (*core.Index, error) {
	h, err := readHeader(dev)
	if err != nil {
		return nil, err
	}
	entries, err := readDirEntries(dev, h)
	if err != nil {
		return nil, err
	}
	dims := h.dims
	if cfg.Dims == 0 {
		cfg.Dims = dims
	}
	if cfg.Dims != dims {
		return nil, fmt.Errorf("store: database has %d dims, config wants %d", dims, cfg.Dims)
	}
	snap := make([]core.ClusterSnapshot, len(entries))
	for i, e := range entries {
		ids, data, err := ReadRegion(dev, e, dims)
		if err != nil {
			return nil, err
		}
		snap[i] = core.ClusterSnapshot{Signature: e.Signature, Parent: e.Parent, IDs: ids, Data: data}
	}
	window := 0.0
	if h.version >= version2 {
		stats := make([]byte, h.statsLen)
		if _, err := dev.ReadAt(stats, int64(h.size+h.dirLen)); err != nil {
			return nil, corrupt("short statistics block: %v", err)
		}
		if crc32.ChecksumIEEE(stats) != h.statsCRC {
			return nil, corrupt("statistics checksum mismatch")
		}
		eff, err := cfg.Normalized()
		if err != nil {
			return nil, err
		}
		if h.divisionFactor == eff.DivisionFactor {
			if window, err = decodeStats(stats, snap); err != nil {
				return nil, err
			}
		}
	}
	ix, err := core.Restore(cfg, snap)
	if err != nil {
		return nil, corrupt("restore: %v", err)
	}
	if err := ix.SetStatsWindow(window); err != nil {
		return nil, corrupt("restore: %v", err)
	}
	return ix, nil
}
