package store

import (
	"bytes"
	"math/rand"
	"testing"
)

// planCheckpoint saves a small clustered index and returns the device and
// directory for planner tests.
func planCheckpoint(t *testing.T, dims, n int) (*MemDevice, []DirEntry) {
	t.Helper()
	ix := buildIndex(t, dims, n)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	dir, _, err := ReadDirectory(dev)
	if err != nil {
		t.Fatal(err)
	}
	return dev, dir
}

// checkRuns verifies the planner's structural contract over any directory:
// every requested cluster is covered by exactly one run, fully inside the
// run's byte range, and the bytes of the run at the region's offset are
// identical to an individual region read.
func checkRuns(t *testing.T, dev Device, dir []DirEntry, clusters []int32, dims int, runs []ReadRun) {
	t.Helper()
	covered := 0
	for _, run := range runs {
		if run.N <= 0 || run.First != covered {
			t.Fatalf("runs misordered: %+v (covered %d)", run, covered)
		}
		covered += run.N
		buf := make([]byte, run.Bytes)
		if _, err := dev.ReadAt(buf, run.Offset); err != nil {
			t.Fatalf("run read: %v", err)
		}
		for k := 0; k < run.N; k++ {
			e := dir[clusters[run.First+k]]
			lo, hi := e.Offset-run.Offset, e.Offset-run.Offset+int64(e.RegionBytes(dims))
			if lo < 0 || hi > run.Bytes {
				t.Fatalf("region [%d,%d) outside run %+v", lo, hi, run)
			}
			direct := make([]byte, e.RegionBytes(dims))
			if _, err := dev.ReadAt(direct, e.Offset); err != nil {
				t.Fatalf("direct read: %v", err)
			}
			if !bytes.Equal(buf[lo:hi], direct) {
				t.Fatalf("coalesced bytes differ from individual read for cluster %d", clusters[run.First+k])
			}
		}
	}
	if covered != len(clusters) {
		t.Fatalf("runs cover %d of %d clusters", covered, len(clusters))
	}
}

func TestPlanReadRunsOnCheckpoint(t *testing.T) {
	dev, dir := planCheckpoint(t, 4, 3000)
	if len(dir) < 4 {
		t.Fatalf("need a multi-cluster checkpoint, got %d", len(dir))
	}
	all := make([]int32, len(dir))
	for i := range all {
		all[i] = int32(i)
	}
	// Regions are laid out back to back: selecting every cluster with any
	// non-negative gap must coalesce into exactly one run.
	runs := PlanReadRuns(dir, append([]int32(nil), all...), 4, 0, nil)
	if len(runs) != 1 || runs[0].N != len(dir) {
		t.Fatalf("adjacent regions must form one run: %+v", runs)
	}
	checkRuns(t, dev, dir, all, 4, runs)

	// Coalescing disabled: one run per cluster, still byte-identical.
	sorted := append([]int32(nil), all...)
	runs = PlanReadRuns(dir, sorted, 4, -1, nil)
	if len(runs) != len(dir) {
		t.Fatalf("disabled coalescing must not merge: %d runs for %d clusters", len(runs), len(dir))
	}
	checkRuns(t, dev, dir, sorted, 4, runs)

	// Random subsets at assorted gaps, including shuffled input order.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var subset []int32
		for i := range dir {
			if rng.Intn(3) == 0 {
				subset = append(subset, int32(i))
			}
		}
		if len(subset) == 0 {
			continue
		}
		rng.Shuffle(len(subset), func(i, j int) { subset[i], subset[j] = subset[j], subset[i] })
		maxGap := int64(rng.Intn(3000)) - 1
		runs := PlanReadRuns(dir, subset, 4, maxGap, nil)
		checkRuns(t, dev, dir, subset, 4, runs)
		if maxGap >= 0 {
			// Gap bound respected: consecutive regions inside one run
			// never skip more than maxGap bytes.
			for _, run := range runs {
				for k := 1; k < run.N; k++ {
					prev := dir[subset[run.First+k-1]]
					cur := dir[subset[run.First+k]]
					if gap := cur.Offset - (prev.Offset + int64(prev.RegionBytes(4))); gap > maxGap {
						t.Fatalf("run bridges gap %d > maxGap %d", gap, maxGap)
					}
				}
			}
		}
	}
}

// FuzzPlanReadRuns synthesizes arbitrary directories (random offsets and
// capacities — including overlapping and duplicated regions, which a
// corrupt directory could present) over a random device image and checks
// the planner's contract: full coverage, in-run containment, and coalesced
// bytes identical to individual reads.
func FuzzPlanReadRuns(f *testing.F) {
	f.Add(int64(1), uint8(6), int64(64), uint8(2))
	f.Add(int64(2), uint8(1), int64(-1), uint8(1))
	f.Add(int64(3), uint8(12), int64(0), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nClusters uint8, maxGap int64, dims uint8) {
		if nClusters == 0 || nClusters > 32 {
			t.Skip()
		}
		d := int(dims%4) + 1
		rng := rand.New(rand.NewSource(seed))
		if maxGap > 1<<20 {
			maxGap = maxGap % (1 << 20)
		}
		// Synthesize a directory over a shared byte image. Offsets are
		// random (sometimes overlapping), capacities small.
		img := make([]byte, 1<<16)
		rng.Read(img)
		dev := NewMemDevice()
		if _, err := dev.WriteAt(img, 0); err != nil {
			t.Fatal(err)
		}
		dir := make([]DirEntry, nClusters)
		for i := range dir {
			capacity := rng.Intn(40) + 1
			size := regionSize(capacity, d)
			off := rng.Int63n(int64(len(img) - size))
			dir[i] = DirEntry{Count: rng.Intn(capacity + 1), Capacity: capacity, Offset: off}
		}
		var clusters []int32
		for i := range dir {
			if rng.Intn(2) == 0 {
				clusters = append(clusters, int32(i))
			}
		}
		if len(clusters) == 0 {
			clusters = []int32{0}
		}
		runs := PlanReadRuns(dir, clusters, d, maxGap, nil)
		checkRuns(t, dev, dir, clusters, d, runs)
	})
}

func TestReadRegionIntoReusesBuffers(t *testing.T) {
	dev, dir := planCheckpoint(t, 3, 1500)
	var ids []uint32
	var data []float32
	for _, e := range dir {
		wantIDs, wantData, err := ReadRegion(dev, e, 3)
		if err != nil {
			t.Fatal(err)
		}
		ids, data, err = ReadRegionInto(dev, e, 3, ids[:0], data[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(wantIDs) || len(data) != len(wantData) {
			t.Fatalf("shape mismatch: %d/%d ids, %d/%d data", len(ids), len(wantIDs), len(data), len(wantData))
		}
		for i := range ids {
			if ids[i] != wantIDs[i] {
				t.Fatal("ids differ from ReadRegion")
			}
		}
		for i := range data {
			if data[i] != wantData[i] {
				t.Fatal("data differs from ReadRegion")
			}
		}
	}
	// Steady state: with warm buffers and a warm pool the read allocates
	// nothing.
	e := dir[0]
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		ids, data, err = ReadRegionInto(dev, e, 3, ids[:0], data[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadRegionInto allocates %.1f per call, want 0", allocs)
	}
}

func TestDecodeRegionColumnsMatchesReadRegion(t *testing.T) {
	dev, dir := planCheckpoint(t, 4, 2000)
	for _, e := range dir {
		img := make([]byte, e.RegionBytes(4))
		if _, err := dev.ReadAt(img, e.Offset); err != nil {
			t.Fatal(err)
		}
		ids := make([]uint32, e.Count)
		lo := make([][]float32, 4)
		hi := make([][]float32, 4)
		for d := range lo {
			lo[d] = make([]float32, e.Count)
			hi[d] = make([]float32, 4*e.Count)[:e.Count]
		}
		if err := DecodeRegionColumns(img, e, 4, ids, lo, hi); err != nil {
			t.Fatal(err)
		}
		wantIDs, wantData, err := ReadRegion(dev, e, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ids {
			if ids[i] != wantIDs[i] {
				t.Fatal("ids differ")
			}
			for d := 0; d < 4; d++ {
				if lo[d][i] != wantData[i*8+2*d] || hi[d][i] != wantData[i*8+2*d+1] {
					t.Fatalf("cluster at %d: column transpose mismatch at member %d dim %d", e.Offset, i, d)
				}
			}
		}
	}
	// Corruption must be detected: flip a byte, keep the stale CRC.
	e := dir[0]
	img := make([]byte, e.RegionBytes(4))
	if _, err := dev.ReadAt(img, e.Offset); err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0xFF
	ids := make([]uint32, e.Count)
	lo := [][]float32{make([]float32, e.Count), make([]float32, e.Count), make([]float32, e.Count), make([]float32, e.Count)}
	hi := [][]float32{make([]float32, e.Count), make([]float32, e.Count), make([]float32, e.Count), make([]float32, e.Count)}
	if err := DecodeRegionColumns(img, e, 4, ids, lo, hi); err == nil {
		t.Fatal("corrupt image must fail the checksum")
	}
	// A wrong-size image must be rejected before the checksum.
	if err := DecodeRegionColumns(img[:len(img)-4], e, 4, ids, lo, hi); err == nil {
		t.Fatal("truncated image must be rejected")
	}
}
