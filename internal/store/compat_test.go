package store

// Format-compatibility pinning: the device format stores member coordinates
// interleaved (row-major), the layout the in-memory engine used before it
// went columnar. This test hand-assembles a version-1 segment byte by byte —
// independent of Save, so a layout change in either the engine or the writer
// cannot silently re-define the format — and checks that Load transposes it
// into a working index.

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"accluster/internal/core"
	"accluster/internal/geom"
)

func putF32(b []byte, v float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(v)) }

func TestLoadPreColumnarSegment(t *testing.T) {
	const dims = 2
	// Three objects in row-major flat order: lo0,hi0,lo1,hi1 per object.
	ids := []uint32{7, 9, 11}
	rows := [][]float32{
		{0.1, 0.2, 0.3, 0.4},
		{0.5, 0.6, 0.0, 1.0},
		{0.25, 0.25, 0.75, 0.75},
	}
	const (
		count    = 3
		capacity = 4
	)
	es := entrySize(dims)
	regionOff := int64(headerSize + es)

	region := make([]byte, regionSize(capacity, dims))
	for k, id := range ids {
		binary.LittleEndian.PutUint32(region[k*4:], id)
	}
	coordBase := capacity * 4
	for k, row := range rows {
		for j, v := range row {
			putF32(region[coordBase+(k*2*dims+j)*4:], v)
		}
	}

	dir := make([]byte, es)
	parent := int32(-1) // root
	binary.LittleEndian.PutUint32(dir[0:], uint32(parent))
	binary.LittleEndian.PutUint32(dir[4:], count)
	binary.LittleEndian.PutUint32(dir[8:], capacity)
	binary.LittleEndian.PutUint64(dir[12:], uint64(regionOff))
	binary.LittleEndian.PutUint32(dir[20:], crc32.ChecksumIEEE(region))
	for d := 0; d < dims; d++ {
		putF32(dir[24+d*16:], 0)    // aLo
		putF32(dir[24+d*16+4:], 1)  // aHi
		putF32(dir[24+d*16+8:], 0)  // bLo
		putF32(dir[24+d*16+12:], 1) // bHi
	}

	head := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(head[0:], magic)
	binary.LittleEndian.PutUint32(head[4:], version)
	binary.LittleEndian.PutUint32(head[8:], dims)
	binary.LittleEndian.PutUint32(head[12:], 1) // cluster count
	binary.LittleEndian.PutUint32(head[16:], uint32(es))
	binary.LittleEndian.PutUint32(head[20:], crc32.ChecksumIEEE(dir))
	binary.LittleEndian.PutUint32(head[24:], crc32.ChecksumIEEE(head[:24]))

	dev := NewMemDevice()
	if _, err := dev.WriteAt(head, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt(dir, headerSize); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt(region, regionOff); err != nil {
		t.Fatal(err)
	}

	ix, err := Load(dev, core.Config{})
	if err != nil {
		t.Fatalf("loading a hand-assembled v1 segment: %v", err)
	}
	if ix.Len() != count || ix.Dims() != dims {
		t.Fatalf("loaded %d objects / %d dims, want %d / %d", ix.Len(), ix.Dims(), count, dims)
	}
	for k, id := range ids {
		r, ok := ix.Get(id)
		if !ok {
			t.Fatalf("object %d missing after load", id)
		}
		want := rows[k]
		if r.Min[0] != want[0] || r.Max[0] != want[1] || r.Min[1] != want[2] || r.Max[1] != want[3] {
			t.Fatalf("object %d: got %v, want %v", id, r, want)
		}
	}
	// A selection over the transposed columns sees all members.
	n, err := ix.Count(geom.Rect{Min: []float32{0, 0}, Max: []float32{1, 1}}, geom.Intersects)
	if err != nil || n != count {
		t.Fatalf("full-domain count = %d (%v), want %d", n, err, count)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Round-trip: saving the columnar index reproduces byte-identical
	// header/directory geometry and an equivalent region (same transpose).
	dev2 := NewMemDevice()
	if err := Save(ix, dev2); err != nil {
		t.Fatal(err)
	}
	ix2, err := Load(dev2, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		a, _ := ix.Get(id)
		b, ok := ix2.Get(id)
		if !ok || !a.Equal(b) {
			t.Fatalf("object %d differs after save/load round-trip", id)
		}
	}
}
