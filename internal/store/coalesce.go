package store

import "slices"

// Seek-coalescing read planning. The disk layout stores cluster regions
// sequentially (§6), so the regions a query explores are often adjacent or
// nearly adjacent on the device. Reading each region individually pays one
// random access per cluster (the paper's Table 2 charges 15 ms); merging
// adjacent and near-adjacent regions into single sequential reads trades a
// bounded number of gap bytes (transferred at the sequential rate) for
// whole seeks — profitable whenever the gap is smaller than the seek-time
// byte equivalent (~300 KB at 15 ms and 20 MB/s).

// ReadRun is one coalesced device read covering one or more cluster regions.
type ReadRun struct {
	// Offset is the device offset of the run's first byte.
	Offset int64
	// Bytes is the total length of the read, gaps included.
	Bytes int64
	// First and N locate the covered regions in the planner's sorted
	// cluster list: clusters[First : First+N].
	First, N int
}

// PlanReadRuns plans the coalesced reads for the given cluster positions:
// it sorts clusters by device offset in place and appends the read runs to
// runs, merging two successive regions into one run when the byte gap
// between them is at most maxGap (0 merges only exactly adjacent regions; a
// negative maxGap disables coalescing — one run per region). Each region's
// image inside its run's buffer starts at dir[c].Offset−run.Offset; the
// planner guarantees every run covers all its regions in full, so those
// slices are byte-identical to individual region reads.
func PlanReadRuns(dir []DirEntry, clusters []int32, dims int, maxGap int64, runs []ReadRun) []ReadRun {
	if len(clusters) == 0 {
		return runs
	}
	slices.SortFunc(clusters, func(a, b int32) int {
		oa, ob := dir[a].Offset, dir[b].Offset
		switch {
		case oa < ob:
			return -1
		case oa > ob:
			return 1
		default:
			return int(a - b)
		}
	})
	start := dir[clusters[0]].Offset
	end := start + int64(dir[clusters[0]].RegionBytes(dims))
	first := 0
	for i := 1; i < len(clusters); i++ {
		e := dir[clusters[i]]
		regEnd := e.Offset + int64(e.RegionBytes(dims))
		// A region starting before the current end overlaps (or repeats)
		// — it is covered by extending the run, never by a new one, or
		// the per-region slices would fall outside their run.
		if maxGap >= 0 && e.Offset-end <= maxGap || e.Offset < end {
			if regEnd > end {
				end = regEnd
			}
			continue
		}
		runs = append(runs, ReadRun{Offset: start, Bytes: end - start, First: first, N: i - first})
		start, end, first = e.Offset, regEnd, i
	}
	return append(runs, ReadRun{Offset: start, Bytes: end - start, First: first, N: len(clusters) - first})
}
