package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accluster/internal/core"
	"accluster/internal/geom"
)

// TestPropertyRoundTrip: arbitrary clustered states (random dimensionality,
// workload, churn and query history) survive Save/Load bit-exactly in
// structure and answers.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(8) + 1
		ix, err := core.New(core.Config{Dims: dims, ReorgEvery: rng.Intn(40) + 10})
		if err != nil {
			return false
		}
		n := rng.Intn(2000) + 50
		for id := 0; id < n; id++ {
			if err := ix.Insert(uint32(id), randomRect(rng, dims, 0.5)); err != nil {
				return false
			}
		}
		// Random churn.
		for k := 0; k < n/5; k++ {
			ix.Delete(uint32(rng.Intn(n)))
		}
		for i := 0; i < rng.Intn(150); i++ {
			q := randomRect(rng, dims, 0.3)
			if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
				return false
			}
		}
		dev := NewMemDevice()
		if err := Save(ix, dev); err != nil {
			t.Logf("save: %v", err)
			return false
		}
		back, err := Load(dev, core.Config{Dims: dims})
		if err != nil {
			t.Logf("load: %v", err)
			return false
		}
		if back.Len() != ix.Len() || back.Clusters() != ix.Clusters() {
			return false
		}
		if err := back.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		for i := 0; i < 15; i++ {
			q := randomRect(rng, dims, 0.5)
			rel := geom.Relation(i % 3)
			a, err1 := ix.Count(q, rel)
			b, err2 := back.Count(q, rel)
			if err1 != nil || err2 != nil || a != b {
				t.Logf("query %d: %d vs %d (%v %v)", i, a, b, err1, err2)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestRandomBitFlipsNeverLoadSilently saves a database, flips a random byte
// and requires Load to fail (or, if the flip hit reserved slack bytes inside
// a region, to load the identical object set — the only byte ranges not
// covered by data are still checksummed, so any flip must actually fail).
func TestRandomBitFlipsNeverLoadSilently(t *testing.T) {
	ix := buildIndex(t, 4, 700)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		dev := NewMemDevice()
		if err := Save(ix, dev); err != nil {
			t.Fatal(err)
		}
		size, _ := dev.Size()
		off := rng.Int63n(size)
		if err := dev.Corrupt(off); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dev, core.Config{Dims: 4}); err == nil {
			t.Fatalf("bit flip at offset %d of %d loaded silently", off, size)
		}
	}
}
