package store

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"accluster/internal/core"
	"accluster/internal/geom"
)

func randomRect(rng *rand.Rand, dims int, maxSize float32) geom.Rect {
	r := geom.NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

// buildIndex returns a clustered index with live statistics.
func buildIndex(t *testing.T, dims, n int) *core.Index {
	t.Helper()
	ix, err := core.New(core.Config{Dims: dims, ReorgEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for id := 0; id < n; id++ {
		if err := ix.Insert(uint32(id), randomRect(rng, dims, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		q := randomRect(rng, dims, 0.2)
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func queryIDs(t *testing.T, ix *core.Index, q geom.Rect, rel geom.Relation) []uint32 {
	t.Helper()
	ids, err := ix.SearchIDs(q, rel)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := buildIndex(t, 4, 2000)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dev, core.Config{Dims: 4, ReorgEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("loaded %d objects, want %d", loaded.Len(), ix.Len())
	}
	if loaded.Clusters() != ix.Clusters() {
		t.Fatalf("loaded %d clusters, want %d", loaded.Clusters(), ix.Clusters())
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 40; i++ {
		q := randomRect(rng, 4, 0.4)
		rel := geom.Relation(i % 3)
		a, b := queryIDs(t, ix, q, rel), queryIDs(t, loaded, q, rel)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("query %d: result mismatch", i)
			}
		}
	}
}

func TestLoadAdoptsDims(t *testing.T) {
	ix := buildIndex(t, 3, 300)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dev, core.Config{}) // Dims 0: adopt from file
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dims() != 3 {
		t.Fatalf("adopted dims = %d", loaded.Dims())
	}
	if _, err := Load(dev, core.Config{Dims: 5}); err == nil {
		t.Error("dims mismatch must fail")
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spatial.acdb")
	ix := buildIndex(t, 5, 800)
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	loaded, err := Load(dev2, core.Config{Dims: 5})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 800 {
		t.Fatalf("loaded %d objects", loaded.Len())
	}
	if sz, err := dev2.Size(); err != nil || sz == 0 {
		t.Fatalf("file size: %d, %v", sz, err)
	}
}

func TestCheckpointOverwrite(t *testing.T) {
	// A second, smaller checkpoint must fully replace the first.
	ix := buildIndex(t, 3, 1500)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	big, _ := dev.Size()
	for id := uint32(0); id < 1400; id++ {
		ix.Delete(id)
	}
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	small, _ := dev.Size()
	if small >= big {
		t.Errorf("checkpoint did not shrink: %d -> %d", big, small)
	}
	loaded, err := Load(dev, core.Config{Dims: 3})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 100 {
		t.Fatalf("loaded %d objects, want 100", loaded.Len())
	}
}

func TestStorageUtilization(t *testing.T) {
	// §6: at least 70% utilization. Our reservation is 25%, so live/cap
	// must be ≥ 70% for clusters of meaningful size.
	for _, n := range []int{1, 4, 10, 1000} {
		c := reserveSlots(n)
		util := float64(n) / float64(c)
		if n >= 4 && util < 0.70 {
			t.Errorf("n=%d: utilization %.2f below 70%%", n, util)
		}
		if c <= n {
			t.Errorf("n=%d: no reserved slots", n)
		}
	}
}

func TestCorruptionDetection(t *testing.T) {
	ix := buildIndex(t, 4, 600)
	size, _ := func() (int64, error) {
		dev := NewMemDevice()
		if err := Save(ix, dev); err != nil {
			t.Fatal(err)
		}
		return dev.Size()
	}()
	// Flip a byte at several strategic offsets: header, directory,
	// first region, last byte.
	offsets := []int64{0, 5, headerSize + 3, size / 2, size - 1}
	for _, off := range offsets {
		dev := NewMemDevice()
		if err := Save(ix, dev); err != nil {
			t.Fatal(err)
		}
		if err := dev.Corrupt(off); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dev, core.Config{Dims: 4}); err == nil {
			t.Errorf("corruption at offset %d went undetected", off)
		} else if _, ok := err.(*CorruptError); !ok {
			t.Errorf("offset %d: error %v is not a CorruptError", off, err)
		}
	}
}

func TestTruncatedFileDetection(t *testing.T) {
	ix := buildIndex(t, 4, 600)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	size, _ := dev.Size()
	// Simulate a crash mid-write: the tail is missing.
	if err := dev.Truncate(size / 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dev, core.Config{Dims: 4}); err == nil {
		t.Error("truncated database went undetected")
	}
	// Empty device.
	if _, err := Load(NewMemDevice(), core.Config{Dims: 4}); err == nil {
		t.Error("empty device must fail to load")
	}
}

func TestMemDeviceEdgeCases(t *testing.T) {
	m := NewMemDevice()
	if _, err := m.ReadAt(make([]byte, 4), 0); err == nil {
		t.Error("read from empty device must fail")
	}
	if _, err := m.WriteAt([]byte{1, 2, 3}, -1); err == nil {
		t.Error("negative offset must fail")
	}
	if err := m.Truncate(-1); err == nil {
		t.Error("negative truncate must fail")
	}
	if err := m.Corrupt(0); err == nil {
		t.Error("corrupt on empty device must fail")
	}
	if _, err := m.WriteAt([]byte{1, 2, 3}, 10); err != nil {
		t.Fatal(err)
	}
	if sz, _ := m.Size(); sz != 13 {
		t.Errorf("size = %d, want 13", sz)
	}
	if err := m.Truncate(20); err != nil {
		t.Fatal(err)
	}
	if sz, _ := m.Size(); sz != 20 {
		t.Errorf("size after grow = %d", sz)
	}
	if err := m.Sync(); err != nil {
		t.Error("Sync must succeed")
	}
}

func TestRestoreValidation(t *testing.T) {
	if _, err := core.Restore(core.Config{Dims: 2}, nil); err == nil {
		t.Error("empty snapshot must fail")
	}
	ix := buildIndex(t, 2, 100)
	snap := ix.Snapshot()
	if len(snap) > 1 {
		// Break the parent ordering.
		snap[1].Parent = len(snap) + 5
		if _, err := core.Restore(core.Config{Dims: 2}, snap); err == nil {
			t.Error("invalid parent must fail")
		}
	}
	// Duplicate ids across clusters.
	snap = ix.Snapshot()
	if len(snap[0].IDs) >= 2 {
		snap[0].IDs[1] = snap[0].IDs[0]
		if _, err := core.Restore(core.Config{Dims: 2}, snap); err == nil {
			t.Error("duplicate ids must fail")
		}
	}
}
