package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"accluster/internal/core"
)

// TestSaveTruncatesShrunkenDatabase pins the truncate-to-new-length
// behavior of Save: re-saving a database that shrank must not leave stale
// tail bytes of the previous, larger checkpoint on the device, and the
// shrunken file must reload to exactly the surviving objects.
func TestSaveTruncatesShrunkenDatabase(t *testing.T) {
	ix := buildIndex(t, 3, 900)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	bigSize, _ := dev.Size()

	// Shrink the index drastically and re-save onto the same device.
	for id := 100; id < 900; id++ {
		ix.Delete(uint32(id))
	}
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	smallSize, _ := dev.Size()
	if smallSize >= bigSize {
		t.Fatalf("re-save of shrunken database did not truncate: %d -> %d bytes", bigSize, smallSize)
	}
	back, err := Load(dev, core.Config{Dims: 3})
	if err != nil {
		t.Fatalf("load shrunken database: %v", err)
	}
	if back.Len() != ix.Len() {
		t.Fatalf("shrunken reload has %d objects, want %d", back.Len(), ix.Len())
	}
	if err := Verify(dev); err != nil {
		t.Fatalf("verify shrunken database: %v", err)
	}
}

// TestSaveFileRoundTrip exercises the atomic save path on the real
// filesystem: save, reload, overwrite with a smaller state, reload again;
// no temporary files may remain.
func TestSaveFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.acdb")
	ix := buildIndex(t, 2, 400)
	if err := SaveFile(ix, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ix.Len() || back.Dims() != 2 {
		t.Fatalf("reload: %d objects / %d dims, want %d / 2", back.Len(), back.Dims(), ix.Len())
	}
	for id := 50; id < 400; id++ {
		ix.Delete(uint32(id))
	}
	if err := SaveFile(ix, path); err != nil {
		t.Fatal(err)
	}
	back, err = LoadFile(path, core.Config{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 50 {
		t.Fatalf("reload after shrink: %d objects, want 50", back.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "db.acdb" {
			t.Fatalf("unexpected leftover file %q", e.Name())
		}
	}
}

// TestLoadFileMissing pins that opening a missing database fails instead of
// silently creating an empty file (the pre-atomic behavior).
func TestLoadFileMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.acdb")
	if _, err := LoadFile(path, core.Config{}); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("a failed load created the file")
	}
}

// TestVerifyDetectsEveryFlip mirrors the bit-flip load test at the Verify
// level: a pristine database verifies clean, and a flip anywhere must fail
// verification with an error classified as ErrCorrupt.
func TestVerifyDetectsEveryFlip(t *testing.T) {
	ix := buildIndex(t, 4, 600)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	if err := Verify(dev); err != nil {
		t.Fatalf("pristine database failed verification: %v", err)
	}
	size, _ := dev.Size()
	// Deterministic sweep: one flip per stride window across the file; the
	// flip is XOR, so undoing it restores the pristine image.
	for off := int64(0); off < size; off += 97 {
		if err := dev.Corrupt(off); err != nil {
			t.Fatal(err)
		}
		err := Verify(dev)
		if uerr := dev.Corrupt(off); uerr != nil {
			t.Fatal(uerr)
		}
		if err == nil {
			t.Fatalf("flip at %d/%d verified clean", off, size)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: error not classified as ErrCorrupt: %v", off, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Reason == "" {
			t.Fatalf("flip at %d: error not a *CorruptError with a reason: %v", off, err)
		}
	}
}

// TestWriteFileAtomic pins the helper used for manifests: content lands
// complete, overwrites are atomic, and no .tmp residue survives.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "MANIFEST")
	if err := WriteFileAtomic(OS, path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(OS, path, []byte("second-longer")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second-longer" {
		t.Fatalf("content %q, want %q", got, "second-longer")
	}
	if err := WriteFileAtomic(OS, path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "x" {
		t.Fatalf("shrinking overwrite left %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}
