package store

// Version-2 format: the adaptive query statistics ride in a dedicated,
// checksummed block. These tests pin the warm round trip, the graceful cold
// load under a different division factor (the candidate enumeration the
// indicators index into depends on it), and corruption detection.

import (
	"math/rand"
	"testing"

	"accluster/internal/core"
	"accluster/internal/geom"
)

// buildQueried returns an index with materialized clusters and non-zero
// query statistics.
func buildQueried(t *testing.T) *core.Index {
	t.Helper()
	ix, err := core.New(core.Config{Dims: 3, ReorgEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	r := geom.NewRect(3)
	for id := uint32(0); id < 3000; id++ {
		for d := 0; d < 3; d++ {
			size := rng.Float32() * 0.1
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		if err := ix.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		base := rng.Float32() * 0.1
		q := geom.Rect{Min: []float32{base, base, base}, Max: []float32{base + 0.1, base + 0.1, base + 0.1}}
		if err := ix.Search(q, geom.Intersects, func(uint32) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Clusters() < 2 {
		t.Fatal("workload did not materialize clusters")
	}
	return ix
}

func TestSaveLoadCarriesStatistics(t *testing.T) {
	ix := buildQueried(t)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dev, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.StatsWindow() != ix.StatsWindow() {
		t.Fatalf("window: loaded %g, want %g", loaded.StatsWindow(), ix.StatsWindow())
	}
	if loaded.StatsWindow() == 0 {
		t.Fatal("saved index had an empty statistics window — test is vacuous")
	}
	want := ix.Snapshot()
	got := loaded.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("cluster count: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Q != want[i].Q {
			t.Fatalf("cluster %d: loaded q %g, want %g", i, got[i].Q, want[i].Q)
		}
		if len(got[i].CandQ) != len(want[i].CandQ) {
			t.Fatalf("cluster %d: candidate count %d, want %d", i, len(got[i].CandQ), len(want[i].CandQ))
		}
		for k := range want[i].CandQ {
			if got[i].CandQ[k] != want[i].CandQ[k] {
				t.Fatalf("cluster %d candidate %d: %g vs %g", i, k, got[i].CandQ[k], want[i].CandQ[k])
			}
		}
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOtherDivisionFactorRestoresCold(t *testing.T) {
	ix := buildQueried(t) // division factor 4 (default)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dev, core.Config{DivisionFactor: 8})
	if err != nil {
		t.Fatalf("a division-factor change must load (cold), got %v", err)
	}
	if loaded.StatsWindow() != 0 {
		t.Fatalf("window = %g after division-factor change, want 0 (statistics skipped)", loaded.StatsWindow())
	}
	if loaded.Len() != ix.Len() || loaded.Clusters() != ix.Clusters() {
		t.Fatalf("structure lost: %d objects / %d clusters, want %d / %d",
			loaded.Len(), loaded.Clusters(), ix.Len(), ix.Clusters())
	}
}

func TestLoadDetectsCorruptStatistics(t *testing.T) {
	ix := buildQueried(t)
	dev := NewMemDevice()
	if err := Save(ix, dev); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the statistics block (just past the directory).
	h, err := readHeader(dev)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(h.size + h.dirLen + 3)
	b := make([]byte, 1)
	if _, err := dev.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := dev.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dev, core.Config{}); err == nil {
		t.Fatal("corrupt statistics block not detected")
	}
}
