package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// File is an open file of an FS: a Device with a lifetime.
type File interface {
	Device
	Close() error
}

// FS abstracts the file-level operations of the atomic checkpoint paths
// (SaveFile, shard directory saves). Production uses OS; crash-recovery
// tests substitute fault-injecting and crash-simulating implementations
// (internal/faultio) so every write, sync and rename is an injectable fault
// point.
type FS interface {
	// Create opens path for writing, truncating any existing content.
	Create(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// Rename atomically replaces newpath with oldpath. Durability of the
	// new name requires a following SyncDir.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// MkdirAll creates path and any missing parents.
	MkdirAll(path string) error
	// SyncDir flushes directory metadata, making completed creates,
	// renames and removes under dir durable.
	SyncDir(dir string) error
	// ReadDir returns the names of the entries in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the content of path.
	ReadFile(path string) ([]byte, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) MkdirAll(path string) error           { return os.MkdirAll(path, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFileAtomic durably replaces path with data: the bytes are written to
// a temporary file in the same directory, synced to media, renamed into
// place, and the directory entry is synced. A crash at any point leaves
// either the previous content of path or the new one — never a torn mix —
// plus at worst a stale temporary file the next writer truncates.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	err = func() error {
		if _, err := f.WriteAt(data, 0); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp, path)
	}
	if err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	return nil
}
