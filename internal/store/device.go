package store

import (
	"fmt"
	"os"
	"sync"
)

// Device is the block-device abstraction the store writes to: a real file in
// production, an in-memory buffer in tests and simulations.
type Device interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Size() (int64, error)
	Sync() error
}

// MemDevice is an in-memory Device, safe for concurrent use.
type MemDevice struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// ReadAt implements Device.
func (m *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off < 0 || off >= int64(len(m.buf)) {
		return 0, fmt.Errorf("memdevice: read at %d beyond size %d", off, len(m.buf))
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, fmt.Errorf("memdevice: short read at %d", off)
	}
	return n, nil
}

// WriteAt implements Device, growing the buffer as needed.
func (m *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("memdevice: negative offset")
	}
	end := off + int64(len(p))
	if end > int64(len(m.buf)) {
		grown := make([]byte, end)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

// Truncate implements Device.
func (m *MemDevice) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("memdevice: negative size")
	}
	if size <= int64(len(m.buf)) {
		m.buf = m.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, m.buf)
	m.buf = grown
	return nil
}

// Size implements Device.
func (m *MemDevice) Size() (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.buf)), nil
}

// Sync implements Device (no-op in memory).
func (m *MemDevice) Sync() error { return nil }

// Corrupt flips one byte at the given offset; used by recovery tests and
// failure-injection tools.
func (m *MemDevice) Corrupt(off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off >= int64(len(m.buf)) {
		//acvet:ignore corrupterr argument validation of the fault-injection helper itself, not an integrity classification
		return fmt.Errorf("memdevice: corrupt offset %d out of range", off)
	}
	m.buf[off] ^= 0xFF
	return nil
}

// FileDevice adapts an *os.File to Device.
type FileDevice struct{ f *os.File }

// OpenFileDevice opens (creating if necessary) a database file.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

// ReadAt implements Device.
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) { return d.f.ReadAt(p, off) }

// WriteAt implements Device.
func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) { return d.f.WriteAt(p, off) }

// Truncate implements Device.
func (d *FileDevice) Truncate(size int64) error { return d.f.Truncate(size) }

// Size implements Device.
func (d *FileDevice) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Close closes the underlying file.
func (d *FileDevice) Close() error { return d.f.Close() }
