package store

import (
	"fmt"
	"hash/crc32"
	"path/filepath"

	"accluster/internal/core"
)

// tmpSuffix marks in-flight checkpoint files; loaders never open them and
// the next save (or a repair pass) removes leftovers.
const tmpSuffix = ".tmp"

// SaveFile atomically checkpoints the index into path: the full segment is
// written to a temporary file in the same directory, synced to media (file
// and directory), then renamed over path. A crash or I/O error at any point
// leaves either the previous checkpoint or the new one loadable — never a
// torn mix, never total loss.
func SaveFile(ix *core.Index, path string) error { return SaveFileFS(OS, ix, path) }

// SaveFileFS is SaveFile over an explicit filesystem (fault injection).
func SaveFileFS(fsys FS, ix *core.Index, path string) error {
	tmp := path + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: save %s: %w", path, err)
	}
	err = Save(ix, f) // writes the segment, truncates, syncs the file
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp, path)
	}
	if err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: save %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("store: save %s: %w", path, err)
	}
	return nil
}

// LoadFile validates the checkpoint at path and rebuilds the index (see
// Load). The file is opened read-only: loading never creates or modifies
// checkpoint files.
func LoadFile(path string, cfg core.Config) (*core.Index, error) {
	return LoadFileFS(OS, path, cfg)
}

// LoadFileFS is LoadFile over an explicit filesystem.
func LoadFileFS(fsys FS, path string, cfg core.Config) (*core.Index, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, cfg)
}

// Verify validates every checksum of the checkpoint on dev — header,
// directory, statistics block and all cluster regions — without rebuilding
// the index. It reads the whole device once; any failure is a CorruptError.
func Verify(dev Device) error {
	h, err := readHeader(dev)
	if err != nil {
		return err
	}
	entries, err := readDirEntries(dev, h)
	if err != nil {
		return err
	}
	if h.version >= version2 {
		stats := make([]byte, h.statsLen)
		if _, err := dev.ReadAt(stats, int64(h.size+h.dirLen)); err != nil {
			return corrupt("short statistics block: %v", err)
		}
		if crc32.ChecksumIEEE(stats) != h.statsCRC {
			return corrupt("statistics checksum mismatch")
		}
	}
	var (
		ids  []uint32
		data []float32
	)
	for i, e := range entries {
		if ids, data, err = ReadRegionInto(dev, e, h.dims, ids[:0], data[:0]); err != nil {
			return corrupt("cluster %d: %v", i, err)
		}
	}
	return nil
}

// VerifyFile is Verify over the file at path (opened read-only).
func VerifyFile(path string) error { return VerifyFileFS(OS, path) }

// VerifyFileFS is VerifyFile over an explicit filesystem.
func VerifyFileFS(fsys FS, path string) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Verify(f)
}
