package accluster

import "testing"

func TestOptionsApplied(t *testing.T) {
	o := gatherOptions([]Option{
		WithScenario(DiskScenario()),
		WithDivisionFactor(6),
		WithReorgEvery(42),
		WithDecay(0.75),
		WithPageSize(8192),
		WithMinFill(0.3),
		WithReinsertFrac(0.25),
		WithMaxOverlap(0.15),
	})
	if o.scenario.Name != "disk" {
		t.Errorf("scenario = %q", o.scenario.Name)
	}
	if o.divisionFactor != 6 || o.reorgEvery != 42 || o.decay != 0.75 {
		t.Errorf("adaptive options: %+v", o)
	}
	if o.pageSize != 8192 || o.minFill != 0.3 || o.reinsertFrac != 0.25 || o.maxOverlap != 0.15 {
		t.Errorf("tree options: %+v", o)
	}
}

func TestOptionsReachConstructors(t *testing.T) {
	ac, err := NewAdaptive(4, WithDivisionFactor(3), WithReorgEvery(7))
	if err != nil {
		t.Fatal(err)
	}
	// Division factor 3 on a 4-dim root: 4 · 3·4/2 = 24 candidates; the
	// effect is observable through clustering behaviour, but here just
	// assert construction succeeded with non-defaults.
	if ac.Dims() != 4 {
		t.Error("dims")
	}
	rs, err := NewRStar(4, WithPageSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Dims() != 4 {
		t.Error("dims")
	}
	xt, err := NewXTree(4, WithPageSize(1024), WithMaxOverlap(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if xt.Dims() != 4 {
		t.Error("dims")
	}
}

func TestStatsZeroValueSafe(t *testing.T) {
	var s Stats
	if s.ModeledMSPerQuery(MemoryScenario()) != 0 {
		t.Error("zero stats must model to 0")
	}
	if s.ExploredFraction() != 0 || s.VerifiedFraction() != 0 {
		t.Error("zero stats fractions")
	}
	if s.String() == "" {
		t.Error("String on zero value")
	}
}

func TestStatsDimsCarried(t *testing.T) {
	ix, err := NewAdaptive(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().Dims; got != 7 {
		t.Errorf("Stats.Dims = %d, want 7", got)
	}
	ss, _ := NewSeqScan(5)
	if got := ss.Stats().Dims; got != 5 {
		t.Errorf("SeqScan Stats.Dims = %d", got)
	}
	rs, _ := NewRStar(3)
	if got := rs.Stats().Dims; got != 3 {
		t.Errorf("RStar Stats.Dims = %d", got)
	}
	xt, _ := NewXTree(2)
	if got := xt.Stats().Dims; got != 2 {
		t.Errorf("XTree Stats.Dims = %d", got)
	}
}
