package accluster

import (
	"math"
	"testing"
)

func TestOptionsApplied(t *testing.T) {
	o, err := gatherOptions([]Option{
		WithScenario(DiskScenario()),
		WithDivisionFactor(6),
		WithReorgEvery(42),
		WithDecay(0.75),
		WithReorgBudget(32, 2048),
		WithBackgroundReorg(),
		WithPageSize(8192),
		WithMinFill(0.3),
		WithReinsertFrac(0.25),
		WithMaxOverlap(0.15),
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.scenario.Name != "disk" {
		t.Errorf("scenario = %q", o.scenario.Name)
	}
	if o.divisionFactor != 6 || o.reorgEvery != 42 || o.decay != 0.75 {
		t.Errorf("adaptive options: %+v", o)
	}
	if o.reorgClusters != 32 || o.reorgObjects != 2048 || !o.backgroundReorg {
		t.Errorf("reorg options: %+v", o)
	}
	if o.pageSize != 8192 || o.minFill != 0.3 || o.reinsertFrac != 0.25 || o.maxOverlap != 0.15 {
		t.Errorf("tree options: %+v", o)
	}
}

// TestOptionValidation is the table-driven audit of the option surface: a
// tuned configuration must not be able to smuggle an invalid Decay or
// ReorgEvery (or budget) past validation. Engine-level defaulting maps the
// zero value to "use the default", so without option-layer checks an
// explicit WithDecay(0) would silently become 0.5 instead of failing — and
// NaN used to pass the engine's range check outright.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
		ok   bool
	}{
		{"decay valid", WithDecay(0.3), true},
		{"decay one", WithDecay(1), true},
		{"decay zero", WithDecay(0), false},
		{"decay negative", WithDecay(-0.5), false},
		{"decay above one", WithDecay(1.5), false},
		{"decay NaN", WithDecay(math.NaN()), false},
		{"reorg every valid", WithReorgEvery(1), true},
		{"reorg every zero", WithReorgEvery(0), false},
		{"reorg every negative", WithReorgEvery(-5), false},
		{"division factor valid", WithDivisionFactor(2), true},
		{"division factor one", WithDivisionFactor(1), false},
		{"division factor zero", WithDivisionFactor(0), false},
		{"budget valid", WithReorgBudget(1, 1), true},
		{"budget unlimited", WithReorgBudget(Unbudgeted, Unbudgeted), true},
		{"budget zero clusters", WithReorgBudget(0, 100), false},
		{"budget zero objects", WithReorgBudget(100, 0), false},
		{"shards negative", WithShards(-1), false},
		{"disk cache valid", WithDiskCache(1 << 20), true},
		{"disk cache zero", WithDiskCache(0), true},
		{"disk cache negative", WithDiskCache(-1), false},
		{"readahead valid", WithReadahead(64 << 10), true},
		{"readahead zero", WithReadahead(0), true},
		{"readahead negative", WithReadahead(-4096), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Every constructor consuming adaptive options must agree.
			ac, errA := NewAdaptive(3, tc.opt)
			sh, errS := NewSharded(3, tc.opt, WithShards(2))
			if tc.ok {
				if errA != nil || errS != nil {
					t.Fatalf("valid option rejected: adaptive=%v sharded=%v", errA, errS)
				}
				_ = ac.Close()
				_ = sh.Close()
				return
			}
			if errA == nil || errS == nil {
				t.Fatalf("invalid option accepted: adaptive=%v sharded=%v", errA, errS)
			}
		})
	}
}

func TestOptionsReachConstructors(t *testing.T) {
	ac, err := NewAdaptive(4, WithDivisionFactor(3), WithReorgEvery(7))
	if err != nil {
		t.Fatal(err)
	}
	// Division factor 3 on a 4-dim root: 4 · 3·4/2 = 24 candidates; the
	// effect is observable through clustering behaviour, but here just
	// assert construction succeeded with non-defaults.
	if ac.Dims() != 4 {
		t.Error("dims")
	}
	rs, err := NewRStar(4, WithPageSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Dims() != 4 {
		t.Error("dims")
	}
	xt, err := NewXTree(4, WithPageSize(1024), WithMaxOverlap(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if xt.Dims() != 4 {
		t.Error("dims")
	}
}

func TestStatsZeroValueSafe(t *testing.T) {
	var s Stats
	if s.ModeledMSPerQuery(MemoryScenario()) != 0 {
		t.Error("zero stats must model to 0")
	}
	if s.ExploredFraction() != 0 || s.VerifiedFraction() != 0 {
		t.Error("zero stats fractions")
	}
	if s.String() == "" {
		t.Error("String on zero value")
	}
}

func TestStatsDimsCarried(t *testing.T) {
	ix, err := NewAdaptive(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().Dims; got != 7 {
		t.Errorf("Stats.Dims = %d, want 7", got)
	}
	ss, _ := NewSeqScan(5)
	if got := ss.Stats().Dims; got != 5 {
		t.Errorf("SeqScan Stats.Dims = %d", got)
	}
	rs, _ := NewRStar(3)
	if got := rs.Stats().Dims; got != 3 {
		t.Errorf("RStar Stats.Dims = %d", got)
	}
	xt, _ := NewXTree(2)
	if got := xt.Stats().Dims; got != 2 {
		t.Errorf("XTree Stats.Dims = %d", got)
	}
}
