package accluster

import "accluster/internal/cost"

// CalibratedMemoryScenario micro-benchmarks this machine's signature-check
// and verification speeds and returns an in-memory scenario built from the
// measurements — the paper's "dynamically evaluated" cost parameters (§6).
// dims is the intended data space dimensionality. The measurement takes a
// few milliseconds.
func CalibratedMemoryScenario(dims int) Scenario {
	return cost.Calibrate(dims).MemoryParams()
}

// CalibratedDiskScenario is CalibratedMemoryScenario plus the paper's
// reference disk characteristics (15 ms access, 20 MB/s transfer); override
// SeekMS and TransferMSPerByte on the result for a different device.
func CalibratedDiskScenario(dims int) Scenario {
	return cost.Calibrate(dims).DiskParams()
}

// ClusterInfo describes one materialized cluster of an Adaptive index: the
// quantities the cost model reasons about, for monitoring and debugging.
type ClusterInfo struct {
	// Signature renders the constrained dimensions.
	Signature string
	// Objects is the member count.
	Objects int
	// AccessProbability is the current access probability estimate.
	AccessProbability float64
	// Depth is the distance to the root cluster.
	Depth int
	// ConstrainedDims counts dimensions carrying a grouping constraint.
	ConstrainedDims int
	// Candidates is the number of virtual candidate subclusters.
	Candidates int
	// Children is the number of materialized child clusters.
	Children int
}

// ClusterInfos reports every materialized cluster, root first.
func (a *Adaptive) ClusterInfos() []ClusterInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	infos := a.ix.ClusterInfos()
	out := make([]ClusterInfo, len(infos))
	for i, in := range infos {
		out[i] = ClusterInfo(in)
	}
	return out
}
