package accluster

import (
	"fmt"
	"math"
	"time"

	"accluster/internal/cost"
)

// Scenario holds the database and system parameters of a storage scenario
// for the cost model: signature check time (A), exploration setup and disk
// seek (B), and per-byte verification and transfer rates (C). The adaptive
// index bases its clustering decisions on the configured scenario; Stats
// converts operation counts into modeled time under any scenario.
type Scenario = cost.Params

// MemoryScenario returns the in-memory storage scenario with the paper's CPU
// cost constants (§6 Table 2) and no I/O costs.
func MemoryScenario() Scenario { return cost.Memory() }

// DiskScenario returns the disk-based storage scenario: 15 ms random access,
// 20 MB/s sequential transfer (§6 Table 2).
func DiskScenario() Scenario { return cost.Disk() }

// options collects the tunables of all index constructors; each constructor
// reads the fields relevant to it.
type options struct {
	scenario        cost.Params
	divisionFactor  int
	reorgEvery      int
	decay           float64
	reorgClusters   int
	reorgObjects    int
	backgroundReorg bool
	pageSize        int
	minFill         float64
	reinsertFrac    float64
	maxOverlap      float64
	shards          int
	fanout          int
	salvage         bool
	diskCache       int64
	diskCacheSet    bool
	readaheadGap    int64
	readaheadSet    bool

	telemetry         *Telemetry
	telemetryAddr     string
	telemetryRing     int
	telemetryInterval time.Duration

	// err records the first invalid option value. Validation happens at
	// the option layer, not only in the engine config: engine defaulting
	// maps the zero value to "use the default", so an explicitly tuned
	// zero (WithDecay(0), WithReorgEvery(0)) would otherwise be silently
	// replaced instead of rejected — the smuggling path this closes.
	err error
}

func (o *options) fail(format string, args ...any) {
	if o.err == nil {
		o.err = fmt.Errorf("accluster: "+format, args...)
	}
}

// Option customizes an index constructor.
type Option func(*options)

func gatherOptions(opts []Option) (options, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if o.telemetry != nil && o.telemetryAddr != "" {
		o.fail("WithTelemetry and WithTelemetryAddr are mutually exclusive")
	}
	return o, o.err
}

// WithScenario selects the storage scenario whose cost parameters drive the
// adaptive clustering decisions (default MemoryScenario).
func WithScenario(s Scenario) Option {
	return func(o *options) { o.scenario = s }
}

// WithDivisionFactor sets the clustering function's division factor f
// (default 4): each dimension's variation intervals are cut into f
// subintervals when candidate subclusters are generated. f must be ≥ 2.
func WithDivisionFactor(f int) Option {
	return func(o *options) {
		if f < 2 {
			o.fail("division factor must be ≥ 2, got %d", f)
			return
		}
		o.divisionFactor = f
	}
}

// WithReorgEvery sets the number of queries between reorganization rounds
// (default 100). n must be ≥ 1: a non-positive period would disable the
// statistics decay schedule the cost model depends on.
func WithReorgEvery(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.fail("reorganization period must be ≥ 1, got %d", n)
			return
		}
		o.reorgEvery = n
	}
}

// WithDecay sets the exponential forgetting factor applied to query
// statistics at every reorganization round (default 0.5; 1 never forgets).
// d must lie in (0,1]: zero or negative decay would erase the statistics
// window every round and NaN would poison every access probability.
func WithDecay(d float64) Option {
	return func(o *options) {
		if math.IsNaN(d) || d <= 0 || d > 1 {
			o.fail("decay must be in (0,1], got %g", d)
			return
		}
		o.decay = d
	}
}

// WithReorgBudget bounds one incremental reorganization step: at most
// clusters revisits and objects relocations per step (defaults 32 and 128;
// pass Unbudgeted for no bound, which reproduces the synchronous
// stop-the-world pass at every trigger). Merges and materializations are
// chunked across steps, so the object bound caps every step's relocation
// work outright.
func WithReorgBudget(clusters, objects int) Option {
	return func(o *options) {
		if clusters == 0 || objects == 0 {
			o.fail("reorg budget components must be positive or Unbudgeted, got %d/%d", clusters, objects)
			return
		}
		o.reorgClusters, o.reorgObjects = clusters, objects
	}
}

// Unbudgeted disables one bound of WithReorgBudget.
const Unbudgeted = -1

// WithBackgroundReorg moves reorganization work off the query path entirely:
// queries only schedule revisits, and a background goroutine (one per shard
// for NewSharded) drains them, taking the engine lock exclusively once per
// bounded step — concurrent searches interleave between steps. The drainer
// also applies any backlog of deferred statistics publications. Indexes
// built with this option own a goroutine — call Close when done.
func WithBackgroundReorg() Option {
	return func(o *options) { o.backgroundReorg = true }
}

// WithPageSize sets the R*-tree node page size in bytes (default 16384).
func WithPageSize(bytes int) Option {
	return func(o *options) { o.pageSize = bytes }
}

// WithMinFill sets the R*-tree minimum node utilization as a fraction of the
// fan-out (default 0.4).
func WithMinFill(frac float64) Option {
	return func(o *options) { o.minFill = frac }
}

// WithReinsertFrac sets the fraction of entries force-reinserted on the
// first overflow of a level (default 0.3).
func WithReinsertFrac(frac float64) Option {
	return func(o *options) { o.reinsertFrac = frac }
}

// WithShards sets the sharded index's partition count, rounded up to a
// power of two (default: the next power of two ≥ GOMAXPROCS). The shard
// count is fixed for the life of the index and recorded by SaveDir — a
// loaded database keeps its save-time shard count.
func WithShards(n int) Option {
	return func(o *options) {
		if n < 0 {
			o.fail("shard count must be ≥ 0, got %d", n)
			return
		}
		o.shards = n
	}
}

// WithFanout bounds the worker pool used to fan a query out across shards
// (default min(shards, GOMAXPROCS)).
func WithFanout(workers int) Option {
	return func(o *options) { o.fanout = workers }
}

// WithSalvage lets OpenSharded degrade instead of fail when a checkpoint is
// damaged: segments whose checksums do not validate are quarantined — those
// shards start empty — and the remaining partitions are served normally.
// Selections on a degraded index return the answers of the healthy shards
// only. The damage is reported by Stats (QuarantinedPartitions) and
// Quarantined; repopulate with RestoreQuarantined or repair the directory
// offline with cmd/acfsck. Without this option any integrity failure aborts
// the open with an error wrapping ErrCorrupt. Other constructors ignore the
// option.
func WithSalvage() Option {
	return func(o *options) { o.salvage = true }
}

// WithDiskCache sets the decoded-region cache budget (bytes) of a disk
// query engine opened with OpenDisk (default 64 MiB). The cache holds
// decoded cluster regions in memory so repeat explorations skip the device
// entirely; 0 disables it (every exploration reads its region), negative is
// rejected. Other constructors ignore the option.
func WithDiskCache(bytes int64) Option {
	return func(o *options) {
		if bytes < 0 {
			o.fail("disk cache budget must be ≥ 0 bytes, got %d", bytes)
			return
		}
		o.diskCache, o.diskCacheSet = bytes, true
	}
}

// WithReadahead sets the seek-coalescing readahead gap (bytes) of a disk
// query engine opened with OpenDisk (default 256 KiB): regions explored by
// one query whose device gap is at most this many bytes are read in a
// single sequential transfer instead of paying one seek each. 0 disables
// coalescing, negative is rejected. Other constructors ignore the option.
func WithReadahead(gapBytes int64) Option {
	return func(o *options) {
		if gapBytes < 0 {
			o.fail("readahead gap must be ≥ 0 bytes, got %d", gapBytes)
			return
		}
		o.readaheadGap, o.readaheadSet = gapBytes, true
	}
}

// WithTelemetry attaches the engine to a shared flight recorder built with
// NewTelemetry: the engine registers its gauge source (sampled once per
// recorder interval) and records per-query latency into a histogram there.
// Several engines may share one recorder — each gets its own source and
// histogram. The recorder's lifetime belongs to its creator; closing the
// engine does not close a shared recorder. SeqScan/RStar (baselines) ignore
// the option.
func WithTelemetry(t *Telemetry) Option {
	return func(o *options) {
		if t == nil {
			o.fail("telemetry recorder must not be nil")
			return
		}
		o.telemetry = t
	}
}

// WithTelemetryAddr gives the engine a private flight recorder serving the
// live introspection endpoint on addr (":0" picks a free port): /telemetry
// JSON gauges and percentiles, /telemetry/dump binary ring dump, /debug/vars
// expvar and /debug/pprof. The engine owns the recorder — Close stops the
// sampler and the endpoint. Mutually exclusive with WithTelemetry.
func WithTelemetryAddr(addr string) Option {
	return func(o *options) {
		if addr == "" {
			o.fail("telemetry address must not be empty")
			return
		}
		o.telemetryAddr = addr
	}
}

// WithTelemetryRing bounds the flight recorder's in-memory ring (default
// 1 MiB of delta-encoded samples); the oldest samples are evicted when the
// budget fills, so memory use is fixed for the life of the process. Honored
// by NewTelemetry and WithTelemetryAddr.
func WithTelemetryRing(bytes int) Option {
	return func(o *options) {
		if bytes <= 0 {
			o.fail("telemetry ring must be > 0 bytes, got %d", bytes)
			return
		}
		o.telemetryRing = bytes
	}
}

// WithTelemetryInterval sets the flight recorder's sampling period (default
// 1 s). Honored by NewTelemetry and WithTelemetryAddr.
func WithTelemetryInterval(d time.Duration) Option {
	return func(o *options) {
		if d <= 0 {
			o.fail("telemetry interval must be positive, got %v", d)
			return
		}
		o.telemetryInterval = d
	}
}

// WithMaxOverlap sets the X-tree's split-overlap threshold (default 0.2):
// topological splits whose groups overlap more than this fraction are
// rejected in favour of an overlap-free split or a supernode extension.
func WithMaxOverlap(frac float64) Option {
	return func(o *options) { o.maxOverlap = frac }
}
