package accluster

import "accluster/internal/cost"

// Scenario holds the database and system parameters of a storage scenario
// for the cost model: signature check time (A), exploration setup and disk
// seek (B), and per-byte verification and transfer rates (C). The adaptive
// index bases its clustering decisions on the configured scenario; Stats
// converts operation counts into modeled time under any scenario.
type Scenario = cost.Params

// MemoryScenario returns the in-memory storage scenario with the paper's CPU
// cost constants (§6 Table 2) and no I/O costs.
func MemoryScenario() Scenario { return cost.Memory() }

// DiskScenario returns the disk-based storage scenario: 15 ms random access,
// 20 MB/s sequential transfer (§6 Table 2).
func DiskScenario() Scenario { return cost.Disk() }

// options collects the tunables of all index constructors; each constructor
// reads the fields relevant to it.
type options struct {
	scenario       cost.Params
	divisionFactor int
	reorgEvery     int
	decay          float64
	pageSize       int
	minFill        float64
	reinsertFrac   float64
	maxOverlap     float64
	shards         int
	fanout         int
}

// Option customizes an index constructor.
type Option func(*options)

func gatherOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithScenario selects the storage scenario whose cost parameters drive the
// adaptive clustering decisions (default MemoryScenario).
func WithScenario(s Scenario) Option {
	return func(o *options) { o.scenario = s }
}

// WithDivisionFactor sets the clustering function's division factor f
// (default 4): each dimension's variation intervals are cut into f
// subintervals when candidate subclusters are generated.
func WithDivisionFactor(f int) Option {
	return func(o *options) { o.divisionFactor = f }
}

// WithReorgEvery sets the number of queries between reorganization rounds
// (default 100).
func WithReorgEvery(n int) Option {
	return func(o *options) { o.reorgEvery = n }
}

// WithDecay sets the exponential forgetting factor applied to query
// statistics at every reorganization round (default 0.5; 1 never forgets).
func WithDecay(d float64) Option {
	return func(o *options) { o.decay = d }
}

// WithPageSize sets the R*-tree node page size in bytes (default 16384).
func WithPageSize(bytes int) Option {
	return func(o *options) { o.pageSize = bytes }
}

// WithMinFill sets the R*-tree minimum node utilization as a fraction of the
// fan-out (default 0.4).
func WithMinFill(frac float64) Option {
	return func(o *options) { o.minFill = frac }
}

// WithReinsertFrac sets the fraction of entries force-reinserted on the
// first overflow of a level (default 0.3).
func WithReinsertFrac(frac float64) Option {
	return func(o *options) { o.reinsertFrac = frac }
}

// WithShards sets the sharded index's partition count, rounded up to a
// power of two (default: the next power of two ≥ GOMAXPROCS). The shard
// count is fixed for the life of the index and recorded by SaveDir — a
// loaded database keeps its save-time shard count.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithFanout bounds the worker pool used to fan a query out across shards
// (default min(shards, GOMAXPROCS)).
func WithFanout(workers int) Option {
	return func(o *options) { o.fanout = workers }
}

// WithMaxOverlap sets the X-tree's split-overlap threshold (default 0.2):
// topological splits whose groups overlap more than this fraction are
// rejected in favour of an overlap-free split or a supernode extension.
func WithMaxOverlap(frac float64) Option {
	return func(o *options) { o.maxOverlap = frac }
}
