package accluster

import (
	"fmt"
	"sync"
	"time"

	"accluster/internal/core"
	"accluster/internal/cost"
	"accluster/internal/geom"
	"accluster/internal/rstar"
	"accluster/internal/seqscan"
	"accluster/internal/telemetry"
)

// Rect is a multidimensional extended object: a closed interval
// [Min[d], Max[d]] in every dimension of the unit domain.
type Rect = geom.Rect

// Relation is the spatial predicate of a selection.
type Relation = geom.Relation

// Spatial relations between a database object o and a query rectangle q.
const (
	// Intersects selects objects with o ∩ q ≠ ∅.
	Intersects = geom.Intersects
	// ContainedBy selects objects with o ⊆ q.
	ContainedBy = geom.ContainedBy
	// Encloses selects objects with o ⊇ q; use a point q for
	// point-enclosing queries.
	Encloses = geom.Encloses
)

// NewRect allocates a rectangle of the given dimensionality.
func NewRect(dims int) Rect { return geom.NewRect(dims) }

// MakeRect builds a rectangle from bound slices (copied).
func MakeRect(min, max []float32) (Rect, error) {
	if len(min) != len(max) || len(min) == 0 {
		return Rect{}, fmt.Errorf("accluster: mismatched bounds %d/%d", len(min), len(max))
	}
	r := geom.NewRect(len(min))
	copy(r.Min, min)
	copy(r.Max, max)
	if !r.Valid() {
		return Rect{}, fmt.Errorf("accluster: invalid rectangle %v", r)
	}
	return r, nil
}

// MustRect is MakeRect that panics on invalid input; intended for literals.
func MustRect(min, max []float32) Rect {
	r, err := MakeRect(min, max)
	if err != nil {
		panic(err)
	}
	return r
}

// Point builds a degenerate rectangle from point coordinates (copied).
func Point(p []float32) Rect { return geom.Point(p) }

// BatchResult carries the per-query answers of one batched selection
// (SearchIDsBatch) in a single flat buffer. Reusing one BatchResult across
// calls keeps steady-state batches allocation-free on the engines with a
// native batch plane; the per-query slices alias the shared buffer and stay
// valid until the next call that reuses the value.
type BatchResult struct {
	b geom.IDBatch
}

// Queries returns the number of queries answered by the batch.
func (r *BatchResult) Queries() int { return r.b.Queries() }

// IDs returns query i's qualifying identifiers. The slice aliases the
// result buffer: copy it if it must outlive the BatchResult's reuse.
func (r *BatchResult) IDs(i int) []uint32 { return r.b.Query(i) }

// Index is the common interface of the access methods: the adaptive
// clustering index (NewAdaptive), its parallel partitioned variant
// (NewSharded) and the paper's baselines (NewSeqScan, NewRStar).
// Implementations are safe for concurrent use.
type Index interface {
	// Insert adds an object under an identifier unique to the index.
	Insert(id uint32, r Rect) error
	// Update replaces the rectangle stored under an existing id; it
	// returns an error wrapping ErrNotFound if the id is absent.
	Update(id uint32, r Rect) error
	// Delete removes an object, reporting whether it existed.
	Delete(id uint32) bool
	// Get returns the rectangle stored under id.
	Get(id uint32) (Rect, bool)
	// Search calls emit for every object satisfying the relation with q;
	// emit returning false stops the search early.
	Search(q Rect, rel Relation, emit func(id uint32) bool) error
	// SearchIDs collects all qualifying identifiers.
	SearchIDs(q Rect, rel Relation) ([]uint32, error)
	// SearchIDsAppend appends all qualifying identifiers to dst and
	// returns the extended slice; reusing the returned slice across calls
	// keeps steady-state selections allocation-free on engines with an
	// allocation-free query path (Adaptive, Sharded).
	SearchIDsAppend(dst []uint32, q Rect, rel Relation) ([]uint32, error)
	// SearchIDsBatch executes every query of the batch in one call and
	// fills dst with the per-query result sets (dst.IDs(i) holds query i's
	// answers, in the same order SearchIDsAppend would produce them). A nil
	// dst allocates one; passing the same dst across calls reuses its
	// buffers. The adaptive engines (Adaptive, Sharded, Disk) execute the
	// batch natively — one pass over the signature mirror, one coalesced
	// read plan — while the baselines loop the single-query path, so
	// results and per-query statistics are engine-independent.
	SearchIDsBatch(dst *BatchResult, qs []Rect, rel Relation) (*BatchResult, error)
	// Count returns the number of qualifying objects.
	Count(q Rect, rel Relation) (int, error)
	// Len returns the number of stored objects.
	Len() int
	// Dims returns the data space dimensionality.
	Dims() int
	// Stats returns a snapshot of the operation counters.
	Stats() Stats
	// ResetStats zeroes the operation counters.
	ResetStats()
}

// Adaptive is the paper's adaptive cost-based clustering index. Searches
// take the lock shared, so any number of concurrent selections execute in
// parallel; mutations (Insert, Update, Delete, Reorganize) take it
// exclusive. Each query's statistics updates are recorded during the shared
// phase and published opportunistically afterwards (core.TryDrainStats):
// readers never wait on statistics publication or reorganization
// maintenance — both run under brief exclusive acquisitions between
// queries.
type Adaptive struct {
	mu sync.RWMutex
	ix *core.Index

	// Background reorganization (WithBackgroundReorg): queries signal
	// wake, the drainer goroutine takes mu once per bounded step, Close
	// stops it. All nil/zero when the option is off.
	wake      chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// Flight recorder (WithTelemetry / WithTelemetryAddr): qhist records
	// per-query latency — one atomic add per query, nil when telemetry is
	// off; tel is closed by Close only when this engine owns it.
	tel    *Telemetry
	ownTel bool
	qhist  *telemetry.Histogram
}

// NewAdaptive builds an adaptive clustering index for the given
// dimensionality. By default it uses the in-memory cost scenario, division
// factor 4, reorganization every 100 queries (incremental, budgeted — see
// WithReorgBudget) and statistics decay 0.5; see the Option values to tune.
// With WithBackgroundReorg the index owns a drainer goroutine; call Close
// when done.
func NewAdaptive(dims int, opts ...Option) (*Adaptive, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	ix, err := core.New(coreConfig(dims, o))
	if err != nil {
		return nil, err
	}
	a := newAdaptive(ix)
	if err := a.initTelemetry(o); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

// coreConfig maps the gathered options onto a core engine configuration.
func coreConfig(dims int, o options) core.Config {
	return core.Config{
		Dims:                dims,
		Params:              o.scenario,
		DivisionFactor:      o.divisionFactor,
		ReorgEvery:          o.reorgEvery,
		Decay:               o.decay,
		ReorgBudgetClusters: o.reorgClusters,
		ReorgBudgetObjects:  o.reorgObjects,
		BackgroundReorg:     o.backgroundReorg,
	}
}

// newAdaptive wraps a core index, starting the background drainer when the
// index was configured for it.
func newAdaptive(ix *core.Index) *Adaptive {
	a := &Adaptive{ix: ix}
	if ix.Config().BackgroundReorg {
		a.wake = make(chan struct{}, 1)
		a.done = make(chan struct{})
		a.wg.Add(1)
		go a.reorgLoop()
	}
	return a
}

// reorgLoop drains pending reorganization work one budgeted step per lock
// acquisition, so in-flight queries interleave with maintenance instead of
// stalling behind a full pass.
func (a *Adaptive) reorgLoop() {
	defer a.wg.Done()
	for {
		select {
		case <-a.done:
			return
		case <-a.wake:
		}
		for {
			a.mu.Lock()
			more := a.ix.ReorgStep()
			a.mu.Unlock()
			if !more {
				break
			}
			select {
			case <-a.done:
				return
			default:
			}
		}
	}
}

// notifyReorg wakes the background drainer (non-blocking; a pending wake-up
// already covers the new work).
func (a *Adaptive) notifyReorg(pending bool) {
	if pending && a.wake != nil {
		select {
		case a.wake <- struct{}{}:
		default:
		}
	}
}

// publishStats runs a query's publication phase: apply the queued
// statistics deltas under a brief exclusive acquisition when the lock is
// free (blocking only once the backlog hits core.StatsBacklogMax), and wake
// the background drainer when maintenance — reorganization work or an
// unapplied backlog — is pending. Readers therefore never wait on
// publication; a delta a query leaves behind is applied by the next
// exclusive holder, whoever that is.
func (a *Adaptive) publishStats() {
	pending := a.ix.TryDrainStats(&a.mu)
	a.notifyReorg(pending || a.ix.StatsBacklog() > 0)
}

// Close stops the background reorganization goroutine (no-op without
// WithBackgroundReorg). The index stays usable afterwards; pending
// reorganization work is picked up by the normal schedule of a future
// Reorganize call.
func (a *Adaptive) Close() error {
	a.closeOnce.Do(func() {
		if a.done != nil {
			close(a.done)
			a.wg.Wait()
		}
		if a.ownTel && a.tel != nil {
			_ = a.tel.Close()
		}
	})
	return nil
}

// Insert adds an object (placed into the matching cluster with the lowest
// access probability).
func (a *Adaptive) Insert(id uint32, r Rect) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ix.Insert(id, r)
}

// InsertBatch bulk-loads a batch of objects under a single lock
// acquisition. On error the batch may be partially applied; objects
// inserted before the failure remain.
func (a *Adaptive) InsertBatch(ids []uint32, rects []Rect) error {
	if len(ids) != len(rects) {
		return fmt.Errorf("accluster: batch has %d ids but %d rectangles", len(ids), len(rects))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for k := range ids {
		if err := a.ix.Insert(ids[k], rects[k]); err != nil {
			return err
		}
	}
	return nil
}

// Update replaces the rectangle stored under id, relocating the object to
// the matching cluster with the lowest access probability; it returns an
// error wrapping ErrNotFound if the id is absent.
func (a *Adaptive) Update(id uint32, r Rect) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ix.Update(id, r)
}

// Delete removes an object, reporting whether it existed.
func (a *Adaptive) Delete(id uint32) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ix.Delete(id)
}

// Get returns the rectangle stored under id. Concurrent Gets (and searches)
// run in parallel (shared lock).
func (a *Adaptive) Get(id uint32) (Rect, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.ix.Get(id)
}

// Search executes a spatial selection. Concurrent searches run in parallel
// (shared lock); the query's statistics updates are recorded during the
// search and published afterwards. emit must not call back into the same
// index.
//
//ac:noalloc
func (a *Adaptive) Search(q Rect, rel Relation, emit func(id uint32) bool) error {
	// Latency capture is branch-guarded rather than deferred so the warm
	// path stays allocation-free with telemetry on.
	var t0 time.Time
	if a.qhist != nil {
		t0 = time.Now()
	}
	a.mu.RLock()
	err := a.ix.SearchRead(q, rel, emit)
	a.mu.RUnlock()
	a.publishStats()
	if a.qhist != nil {
		a.qhist.Record(int64(time.Since(t0)))
	}
	return err
}

// SearchIDs collects all qualifying identifiers.
func (a *Adaptive) SearchIDs(q Rect, rel Relation) ([]uint32, error) {
	return a.SearchIDsAppend(nil, q, rel)
}

// SearchIDsAppend appends all qualifying identifiers to dst and returns the
// extended slice; with a reused dst of sufficient capacity the selection
// allocates nothing. Concurrent searches run in parallel (shared lock).
//
//ac:noalloc
func (a *Adaptive) SearchIDsAppend(dst []uint32, q Rect, rel Relation) ([]uint32, error) {
	var t0 time.Time
	if a.qhist != nil {
		t0 = time.Now()
	}
	a.mu.RLock()
	ids, err := a.ix.SearchIDsAppendRead(dst, q, rel)
	a.mu.RUnlock()
	a.publishStats()
	if a.qhist != nil {
		a.qhist.Record(int64(time.Since(t0)))
	}
	return ids, err
}

// SearchIDsBatch executes every query of the batch under one shared-lock
// acquisition with a single pass over the signature mirror: clusters matched
// by several queries are verified against all of them while their columns
// are hot, and the whole batch publishes its statistics as one mailbox
// entry. Results, per-query meter charges and clustering statistics are
// exactly those of looping SearchIDsAppend over the batch; with a reused
// dst a steady-state batch allocates nothing. The latency histogram records
// one sample for the whole batch.
//
//ac:noalloc
func (a *Adaptive) SearchIDsBatch(dst *BatchResult, qs []Rect, rel Relation) (*BatchResult, error) {
	if dst == nil {
		//acvet:ignore noalloc nil-dst convenience; steady-state callers pass a reused BatchResult
		dst = new(BatchResult)
	}
	var t0 time.Time
	if a.qhist != nil {
		t0 = time.Now()
	}
	a.mu.RLock()
	err := a.ix.SearchBatchRead(&dst.b, qs, rel)
	a.mu.RUnlock()
	a.publishStats()
	if a.qhist != nil {
		a.qhist.Record(int64(time.Since(t0)))
	}
	return dst, err
}

// Count returns the number of qualifying objects. Concurrent counts run in
// parallel (shared lock).
//
//ac:noalloc
func (a *Adaptive) Count(q Rect, rel Relation) (int, error) {
	var t0 time.Time
	if a.qhist != nil {
		t0 = time.Now()
	}
	a.mu.RLock()
	n, err := a.ix.CountRead(q, rel)
	a.mu.RUnlock()
	a.publishStats()
	if a.qhist != nil {
		a.qhist.Record(int64(time.Since(t0)))
	}
	return n, err
}

// Len returns the number of stored objects.
func (a *Adaptive) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.ix.Len()
}

// Dims returns the data space dimensionality.
func (a *Adaptive) Dims() int { return a.ix.Dims() }

// Clusters returns the number of materialized clusters.
func (a *Adaptive) Clusters() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.ix.Clusters()
}

// Reorganize forces a reorganization round (normally triggered
// automatically every ReorgEvery queries).
func (a *Adaptive) Reorganize() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ix.Reorganize()
}

// ReorgRounds returns the number of reorganization rounds executed.
func (a *Adaptive) ReorgRounds() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.ix.ReorgRounds()
}

// Splits returns the number of cluster materializations performed.
func (a *Adaptive) Splits() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.ix.Splits()
}

// Merges returns the number of cluster merge operations performed.
func (a *Adaptive) Merges() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.ix.Merges()
}

// Stats returns a snapshot of the operation counters. The counters are
// merged race-free per query, so the snapshot is consistent even while
// searches are in flight.
func (a *Adaptive) Stats() Stats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return statsFrom(a.ix.Meter(), a.ix.Len(), a.ix.Clusters(), a.ix.Dims())
}

// ResetStats zeroes the operation counters (clustering statistics are kept).
func (a *Adaptive) ResetStats() {
	a.ix.ResetMeter()
}

// CheckInvariants validates the structural invariants of the index; it is
// expensive and intended for tests.
func (a *Adaptive) CheckInvariants() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ix.CheckInvariants()
}

// SeqScan is the sequential scan baseline.
type SeqScan struct {
	mu sync.Mutex
	s  *seqscan.Store
}

// NewSeqScan builds a sequential scan store.
func NewSeqScan(dims int) (*SeqScan, error) {
	s, err := seqscan.New(dims)
	if err != nil {
		return nil, err
	}
	return &SeqScan{s: s}, nil
}

// Insert adds an object.
func (s *SeqScan) Insert(id uint32, r Rect) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Insert(id, r)
}

// Update replaces the rectangle stored under id; it returns an error
// wrapping ErrNotFound if the id is absent.
func (s *SeqScan) Update(id uint32, r Rect) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return updateByReplace(s.s.Dims(), id, r, s.s.Delete, s.s.Insert)
}

// Delete removes an object, reporting whether it existed.
func (s *SeqScan) Delete(id uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Delete(id)
}

// Get returns the rectangle stored under id.
func (s *SeqScan) Get(id uint32) (Rect, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Get(id)
}

// Search scans the whole collection.
func (s *SeqScan) Search(q Rect, rel Relation, emit func(id uint32) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Search(q, rel, emit)
}

// SearchIDs collects all qualifying identifiers.
func (s *SeqScan) SearchIDs(q Rect, rel Relation) ([]uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.SearchIDs(q, rel)
}

// SearchIDsAppend appends all qualifying identifiers to dst and returns the
// extended slice.
func (s *SeqScan) SearchIDsAppend(dst []uint32, q Rect, rel Relation) ([]uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return appendViaSearch(s.s.Search, dst, q, rel)
}

// SearchIDsBatch answers every query of the batch (looped scans; the
// baseline has no batch plane to exploit).
func (s *SeqScan) SearchIDsBatch(dst *BatchResult, qs []Rect, rel Relation) (*BatchResult, error) {
	return batchViaSingle(s.SearchIDsAppend, dst, qs, rel)
}

// Count returns the number of qualifying objects.
func (s *SeqScan) Count(q Rect, rel Relation) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Count(q, rel)
}

// Len returns the number of stored objects.
func (s *SeqScan) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Len()
}

// Dims returns the data space dimensionality.
func (s *SeqScan) Dims() int { return s.s.Dims() }

// Stats returns a snapshot of the operation counters.
func (s *SeqScan) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return statsFrom(s.s.Meter(), s.s.Len(), 1, s.s.Dims())
}

// ResetStats zeroes the operation counters.
func (s *SeqScan) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.s.ResetMeter()
}

// RStar is the R*-tree baseline.
type RStar struct {
	mu sync.Mutex
	t  *rstar.Tree
}

// NewRStar builds an R*-tree with 16 KB pages by default.
func NewRStar(dims int, opts ...Option) (*RStar, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	t, err := rstar.New(rstar.Config{
		Dims:         dims,
		PageSize:     o.pageSize,
		MinFill:      o.minFill,
		ReinsertFrac: o.reinsertFrac,
	})
	if err != nil {
		return nil, err
	}
	return &RStar{t: t}, nil
}

// Insert adds an object.
func (r *RStar) Insert(id uint32, rect Rect) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Insert(id, rect)
}

// Update replaces the rectangle stored under id; it returns an error
// wrapping ErrNotFound if the id is absent.
func (r *RStar) Update(id uint32, rect Rect) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return updateByReplace(r.t.Dims(), id, rect, r.t.Delete, r.t.Insert)
}

// Delete removes an object, reporting whether it existed.
func (r *RStar) Delete(id uint32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Delete(id)
}

// Get returns the rectangle stored under id.
func (r *RStar) Get(id uint32) (Rect, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Get(id)
}

// Search walks the tree.
func (r *RStar) Search(q Rect, rel Relation, emit func(id uint32) bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Search(q, rel, emit)
}

// SearchIDs collects all qualifying identifiers.
func (r *RStar) SearchIDs(q Rect, rel Relation) ([]uint32, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.SearchIDs(q, rel)
}

// SearchIDsAppend appends all qualifying identifiers to dst and returns the
// extended slice.
func (r *RStar) SearchIDsAppend(dst []uint32, q Rect, rel Relation) ([]uint32, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return appendViaSearch(r.t.Search, dst, q, rel)
}

// SearchIDsBatch answers every query of the batch (looped tree walks; the
// baseline has no batch plane to exploit).
func (r *RStar) SearchIDsBatch(dst *BatchResult, qs []Rect, rel Relation) (*BatchResult, error) {
	return batchViaSingle(r.SearchIDsAppend, dst, qs, rel)
}

// Count returns the number of qualifying objects.
func (r *RStar) Count(q Rect, rel Relation) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Count(q, rel)
}

// Len returns the number of stored objects.
func (r *RStar) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Len()
}

// Dims returns the data space dimensionality.
func (r *RStar) Dims() int { return r.t.Dims() }

// Nodes returns the number of tree nodes (pages).
func (r *RStar) Nodes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Nodes()
}

// Height returns the number of tree levels.
func (r *RStar) Height() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Height()
}

// Stats returns a snapshot of the operation counters.
func (r *RStar) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return statsFrom(r.t.Meter(), r.t.Len(), r.t.Nodes(), r.t.Dims())
}

// ResetStats zeroes the operation counters.
func (r *RStar) ResetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.t.ResetMeter()
}

// CheckInvariants validates the structural invariants of the tree; it is
// expensive and intended for tests.
func (r *RStar) CheckInvariants() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.CheckInvariants()
}

// Compile-time interface checks.
var (
	_ Index = (*Adaptive)(nil)
	_ Index = (*SeqScan)(nil)
	_ Index = (*RStar)(nil)
)

// appendViaSearch implements SearchIDsAppend for engines without a native
// append path, collecting emitted ids into dst. The caller holds the
// engine's lock.
func appendViaSearch(search func(q Rect, rel Relation, emit func(uint32) bool) error, dst []uint32, q Rect, rel Relation) ([]uint32, error) {
	out := dst
	err := search(q, rel, func(id uint32) bool { out = append(out, id); return true })
	return out, err
}

// batchViaSingle implements SearchIDsBatch for engines without a native
// batch plane by looping the single-query append path into the shared result
// buffer — same answers, no batching advantage. Unlike the native engines
// (which validate the whole batch up front), a mid-batch error leaves the
// earlier queries executed and charged; dst is reset so no partial results
// escape.
func batchViaSingle(searchAppend func(dst []uint32, q Rect, rel Relation) ([]uint32, error), dst *BatchResult, qs []Rect, rel Relation) (*BatchResult, error) {
	if dst == nil {
		dst = new(BatchResult)
	}
	dst.b.Reset(len(qs))
	for i, q := range qs {
		ids, err := searchAppend(dst.b.IDs, q, rel)
		if err != nil {
			dst.b.Reset(len(qs))
			return dst, err
		}
		dst.b.IDs = ids
		dst.b.Off[i+1] = int32(len(ids))
	}
	return dst, nil
}

// updateByReplace implements Update for engines without a native one:
// validate first (a failed update must not drop the object), then replace
// via delete + insert. The caller holds the engine's lock.
func updateByReplace(dims int, id uint32, r Rect, del func(uint32) bool, ins func(uint32, Rect) error) error {
	if r.Dims() != dims || !r.Valid() {
		return fmt.Errorf("accluster: invalid %d-dim rectangle for %d-dim index", r.Dims(), dims)
	}
	if !del(id) {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return ins(id, r)
}

// statsFrom converts an internal meter into the public Stats.
func statsFrom(m cost.Meter, objects, partitions, dims int) Stats {
	return Stats{
		Objects:            objects,
		Dims:               dims,
		Partitions:         partitions,
		Queries:            m.Queries,
		PartitionsChecked:  m.SigChecks,
		PartitionsExplored: m.Explorations,
		Seeks:              m.Seeks,
		ObjectsVerified:    m.ObjectsVerified,
		BytesVerified:      m.BytesVerified,
		BytesTransferred:   m.BytesTransferred,
		CacheHits:          m.CacheHits,
		CacheMisses:        m.CacheMisses,
		Results:            m.Results,
	}
}
