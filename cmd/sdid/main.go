// Command sdid is an interactive selective-dissemination (publish/subscribe)
// daemon over the adaptive clustering index — the paper's motivating
// application (§1). It reads commands from stdin:
//
//	sub price=400:700 rooms=3:5 baths=2     register a range subscription
//	unsub 3                                  remove subscription 3
//	pub price=550 rooms=4 baths=2 dist=12    publish a point event
//	pub price=600:900 rooms=3:5              publish a range event
//	stats                                    subscription/cluster statistics
//	quit
//
// The attribute schema is configured with repeated -attr flags:
//
//	sdid -attr dist:0:100 -attr price:0:5000 -attr rooms:1:10 -attr baths:1:5
//
// With -queue N, subscriptions registered by sub get an N-deep asynchronous
// delivery queue each (matched events print as they drain); stats then also
// reports the delivered/dropped counters and the peak queue depth. With
// -telemetry addr, a flight recorder samples the broker and Go runtime once
// per second and serves /telemetry, /telemetry/dump and /debug/pprof on addr.
//
// # Networked operation
//
//	sdid -listen 127.0.0.1:7070                serve the broker over TCP
//	sdid -connect 127.0.0.1:7070               drive a remote broker
//
// With -listen, the broker is additionally served to netbroker clients on
// the given address; -netqueue, -policy (dropoldest, dropnewest,
// disconnect), -maxconns and -drain tune the per-connection delivery
// queues, slow-consumer policy, connection limit and shutdown drain
// deadline. SIGINT/SIGTERM (and quit) drain gracefully: queued deliveries
// are flushed up to the drain deadline before the process exits.
//
// With -connect, the same commands run against a remote sdid -listen
// instance: sub registers a standing subscription whose matches stream
// back and print as they arrive, and the connection survives broker
// restarts — the client redials with backoff and resubscribes.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"accluster/internal/netbroker"
	"accluster/internal/pubsub"
	"accluster/internal/telemetry"
)

func parseRange(s string) (pubsub.Range, error) {
	parts := strings.SplitN(s, ":", 2)
	lo, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return pubsub.Range{}, fmt.Errorf("bad number %q", parts[0])
	}
	if len(parts) == 1 {
		return pubsub.Value(lo), nil
	}
	hi, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return pubsub.Range{}, fmt.Errorf("bad number %q", parts[1])
	}
	return pubsub.Range{Lo: lo, Hi: hi}, nil
}

func parseRanges(args []string) (map[string]pubsub.Range, error) {
	out := make(map[string]pubsub.Range, len(args))
	for _, a := range args {
		kv := strings.SplitN(a, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("expected attr=lo[:hi], got %q", a)
		}
		r, err := parseRange(kv[1])
		if err != nil {
			return nil, err
		}
		out[kv[0]] = r
	}
	return out, nil
}

// session is the command surface the REPL drives — backed either by the
// local broker or by a netbroker client connected to a remote one.
type session interface {
	subscribe(ranges map[string]pubsub.Range) (uint32, error)
	unsubscribe(id uint32) (bool, error)
	publish(ranges map[string]pubsub.Range) (string, error)
	stats() string
}

type localSession struct {
	broker *pubsub.Broker
	queue  int
	srv    *netbroker.Server // nil unless -listen
}

func (s *localSession) subscribe(ranges map[string]pubsub.Range) (uint32, error) {
	if s.queue > 0 {
		// Async delivery: matched events print as each subscriber's
		// deliverer drains its queue.
		return s.broker.SubscribeFunc(pubsub.Subscription(ranges),
			func(sub uint32, ev pubsub.Event) {
				fmt.Printf("deliver #%d: %v\n", sub, ev)
			})
	}
	return s.broker.Subscribe(pubsub.Subscription(ranges))
}

func (s *localSession) unsubscribe(id uint32) (bool, error) {
	return s.broker.Unsubscribe(id), nil
}

func (s *localSession) publish(ranges map[string]pubsub.Range) (string, error) {
	if s.queue > 0 || s.srv != nil {
		n, err := s.broker.Publish(pubsub.Event(ranges))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("matched %d subscription(s), queued for delivery", n), nil
	}
	ids, err := s.broker.Match(pubsub.Event(ranges))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("matched %d subscription(s): %v", len(ids), ids), nil
}

func (s *localSession) stats() string {
	st := s.broker.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "subscriptions=%d events=%d matches=%d clusters=%d",
		st.Subscriptions, st.Events, st.Matches, st.Clusters)
	if s.queue > 0 {
		fmt.Fprintf(&b, "\ndelivered=%d dropped_full=%d dropped_closed=%d queued=%d max_queue_depth=%d",
			st.Delivered, st.DroppedFull, st.DroppedClosed, st.Queued, st.MaxQueueDepth)
		for _, ss := range s.broker.SubscriberStats() {
			fmt.Fprintf(&b, "\n  #%d delivered=%d dropped=%d", ss.ID, ss.Delivered, ss.Dropped)
		}
	}
	if s.srv != nil {
		nst := s.srv.Stats()
		fmt.Fprintf(&b, "\nnet: conns=%d/%d net_subs=%d delivered=%d dropped_oldest=%d dropped_newest=%d slow_disconnects=%d corrupt_frames=%d dead_peers=%d",
			nst.ActiveConns, nst.TotalConns, nst.Subscriptions, nst.Delivered,
			nst.DroppedOldest, nst.DroppedNewest, nst.SlowDisconnects,
			nst.CorruptFrames, nst.DeadPeers)
	}
	return b.String()
}

type remoteSession struct {
	ctx context.Context
	cl  *netbroker.Client
}

func (s *remoteSession) subscribe(ranges map[string]pubsub.Range) (uint32, error) {
	return s.cl.Subscribe(s.ctx, pubsub.Subscription(ranges),
		func(sub uint32, ev pubsub.Event) {
			fmt.Printf("deliver #%d: %v\n", sub, ev)
		})
}

func (s *remoteSession) unsubscribe(id uint32) (bool, error) {
	return s.cl.Unsubscribe(s.ctx, id)
}

func (s *remoteSession) publish(ranges map[string]pubsub.Range) (string, error) {
	n, err := s.cl.Publish(s.ctx, pubsub.Event(ranges))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("matched %d subscription(s), streaming to subscribers", n), nil
}

func (s *remoteSession) stats() string {
	st := s.cl.Stats()
	return fmt.Sprintf("connected=%v reconnects=%d delivered=%d corrupt_frames=%d subscriptions=%d",
		st.Connected, st.Reconnects, st.Delivered, st.CorruptFrames, st.Subscriptions)
}

// runREPL drives a session from in until quit/EOF.
func runREPL(in io.Reader, s session) error {
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return nil
		case "sub":
			ranges, err := parseRanges(fields[1:])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			id, err := s.subscribe(ranges)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("subscribed #%d\n", id)
		case "unsub":
			if len(fields) != 2 {
				fmt.Println("error: usage: unsub <id>")
				continue
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			existed, err := s.unsubscribe(uint32(id))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if existed {
				fmt.Printf("removed #%d\n", id)
			} else {
				fmt.Printf("no subscription #%d\n", id)
			}
		case "pub":
			ranges, err := parseRanges(fields[1:])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			line, err := s.publish(ranges)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(line)
		case "stats":
			fmt.Println(s.stats())
		default:
			fmt.Println("commands: sub, unsub, pub, stats, quit")
		}
	}
	return sc.Err()
}

func main() {
	var schema pubsub.Schema
	flag.Func("attr", "attribute as name:min:max (repeatable)", func(s string) error {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return fmt.Errorf("want name:min:max")
		}
		min, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return err
		}
		max, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return err
		}
		schema = append(schema, pubsub.Attribute{Name: parts[0], Min: min, Max: max})
		return nil
	})
	reorg := flag.Int("reorg", 100, "events between cluster reorganizations")
	queue := flag.Int("queue", 0, "per-subscriber async delivery queue depth (0 = synchronous matching only)")
	telAddr := flag.String("telemetry", "", "serve the flight-recorder introspection endpoint on this address (e.g. 127.0.0.1:8125)")
	listen := flag.String("listen", "", "serve the broker to netbroker clients on this address (e.g. 127.0.0.1:7070)")
	connect := flag.String("connect", "", "drive a remote sdid -listen instance instead of a local broker")
	policy := flag.String("policy", "dropoldest", "slow-consumer policy for -listen connections: dropoldest, dropnewest or disconnect")
	netQueue := flag.Int("netqueue", 0, "per-connection delivery queue depth for -listen (0 = default)")
	maxConns := flag.Int("maxconns", 0, "connection limit for -listen (0 = default)")
	drain := flag.Duration("drain", 0, "shutdown drain deadline for -listen (0 = default)")
	flag.Parse()

	if *listen != "" && *connect != "" {
		fmt.Fprintln(os.Stderr, "sdid: -listen and -connect are mutually exclusive")
		os.Exit(1)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	if *connect != "" {
		if err := runConnect(*connect, sigCh); err != nil {
			fmt.Fprintf(os.Stderr, "sdid: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if len(schema) == 0 {
		schema = pubsub.Schema{
			{Name: "dist", Min: 0, Max: 100},
			{Name: "price", Min: 0, Max: 5000},
			{Name: "rooms", Min: 1, Max: 10},
			{Name: "baths", Min: 1, Max: 5},
		}
		fmt.Println("sdid: using default apartment schema (dist, price, rooms, baths)")
	}
	broker, err := pubsub.NewBroker(schema, pubsub.Options{ReorgEvery: *reorg, QueueDepth: *queue})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdid: %v\n", err)
		os.Exit(1)
	}
	defer broker.Close()

	sess := &localSession{broker: broker, queue: *queue}

	if *listen != "" {
		pol, err := netbroker.ParsePolicy(*policy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdid: %v\n", err)
			os.Exit(1)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdid: listen: %v\n", err)
			os.Exit(1)
		}
		srv, err := netbroker.Serve(broker, ln, netbroker.Options{
			QueueDepth: *netQueue, Policy: pol,
			MaxConns: *maxConns, DrainDeadline: *drain,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdid: %v\n", err)
			os.Exit(1)
		}
		sess.srv = srv
		fmt.Printf("sdid: serving broker on %s (policy %v)\n", ln.Addr(), pol)
	}

	if *telAddr != "" {
		rec := telemetry.New(telemetry.Config{})
		rec.Register(telemetry.RuntimeSource())
		rec.Register(broker.TelemetrySource())
		if sess.srv != nil {
			rec.Register(sess.srv.TelemetrySource())
		}
		rec.Start()
		defer rec.Close()
		srv, err := telemetry.Serve(rec, *telAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdid: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("sdid: telemetry on http://%s/telemetry\n", srv.Addr())
	}

	replDone := make(chan error, 1)
	go func() { replDone <- runREPL(os.Stdin, sess) }()

	var replErr error
	if sess.srv != nil {
		// Serving: stay up past stdin EOF; quit or a signal drains.
		select {
		case sig := <-sigCh:
			fmt.Printf("sdid: %v: draining\n", sig)
		case replErr = <-replDone:
			if replErr == nil {
				fmt.Println("sdid: draining")
			}
		}
		d := sess.srv.Shutdown()
		fmt.Printf("sdid: drained in %v\n", d.Round(time.Millisecond))
	} else {
		select {
		case <-sigCh:
		case replErr = <-replDone:
		}
	}
	if replErr != nil {
		fmt.Fprintf(os.Stderr, "sdid: %v\n", replErr)
		os.Exit(1)
	}
}

// runConnect drives the REPL against a remote broker; SIGINT/SIGTERM (or
// quit) closes the client cleanly.
func runConnect(addr string, sigCh chan os.Signal) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dialCtx, dcancel := context.WithTimeout(ctx, 10*time.Second)
	cl, err := netbroker.Dial(dialCtx, addr, netbroker.ClientOptions{})
	dcancel()
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("sdid: connected to %s (%d attributes)\n", addr, len(cl.Schema()))

	replDone := make(chan error, 1)
	go func() { replDone <- runREPL(os.Stdin, &remoteSession{ctx: ctx, cl: cl}) }()
	select {
	case sig := <-sigCh:
		fmt.Printf("sdid: %v: closing\n", sig)
		return nil
	case err := <-replDone:
		return err
	}
}
