// Command sdid is an interactive selective-dissemination (publish/subscribe)
// daemon over the adaptive clustering index — the paper's motivating
// application (§1). It reads commands from stdin:
//
//	sub price=400:700 rooms=3:5 baths=2     register a range subscription
//	unsub 3                                  remove subscription 3
//	pub price=550 rooms=4 baths=2 dist=12    publish a point event
//	pub price=600:900 rooms=3:5              publish a range event
//	stats                                    subscription/cluster statistics
//	quit
//
// The attribute schema is configured with repeated -attr flags:
//
//	sdid -attr dist:0:100 -attr price:0:5000 -attr rooms:1:10 -attr baths:1:5
//
// With -queue N, subscriptions registered by sub get an N-deep asynchronous
// delivery queue each (matched events print as they drain); stats then also
// reports the delivered/dropped counters and the peak queue depth. With
// -telemetry addr, a flight recorder samples the broker and Go runtime once
// per second and serves /telemetry, /telemetry/dump and /debug/pprof on addr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"accluster/internal/pubsub"
	"accluster/internal/telemetry"
)

func parseRange(s string) (pubsub.Range, error) {
	parts := strings.SplitN(s, ":", 2)
	lo, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return pubsub.Range{}, fmt.Errorf("bad number %q", parts[0])
	}
	if len(parts) == 1 {
		return pubsub.Value(lo), nil
	}
	hi, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return pubsub.Range{}, fmt.Errorf("bad number %q", parts[1])
	}
	return pubsub.Range{Lo: lo, Hi: hi}, nil
}

func parseRanges(args []string) (map[string]pubsub.Range, error) {
	out := make(map[string]pubsub.Range, len(args))
	for _, a := range args {
		kv := strings.SplitN(a, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("expected attr=lo[:hi], got %q", a)
		}
		r, err := parseRange(kv[1])
		if err != nil {
			return nil, err
		}
		out[kv[0]] = r
	}
	return out, nil
}

func main() {
	var schema pubsub.Schema
	flag.Func("attr", "attribute as name:min:max (repeatable)", func(s string) error {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return fmt.Errorf("want name:min:max")
		}
		min, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return err
		}
		max, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return err
		}
		schema = append(schema, pubsub.Attribute{Name: parts[0], Min: min, Max: max})
		return nil
	})
	reorg := flag.Int("reorg", 100, "events between cluster reorganizations")
	queue := flag.Int("queue", 0, "per-subscriber async delivery queue depth (0 = synchronous matching only)")
	telAddr := flag.String("telemetry", "", "serve the flight-recorder introspection endpoint on this address (e.g. 127.0.0.1:8125)")
	flag.Parse()

	if len(schema) == 0 {
		schema = pubsub.Schema{
			{Name: "dist", Min: 0, Max: 100},
			{Name: "price", Min: 0, Max: 5000},
			{Name: "rooms", Min: 1, Max: 10},
			{Name: "baths", Min: 1, Max: 5},
		}
		fmt.Println("sdid: using default apartment schema (dist, price, rooms, baths)")
	}
	broker, err := pubsub.NewBroker(schema, pubsub.Options{ReorgEvery: *reorg, QueueDepth: *queue})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdid: %v\n", err)
		os.Exit(1)
	}
	defer broker.Close()

	if *telAddr != "" {
		rec := telemetry.New(telemetry.Config{})
		rec.Register(telemetry.RuntimeSource())
		rec.Register(broker.TelemetrySource())
		rec.Start()
		defer rec.Close()
		srv, err := telemetry.Serve(rec, *telAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdid: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("sdid: telemetry on http://%s/telemetry\n", srv.Addr())
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "sub":
			ranges, err := parseRanges(fields[1:])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			var id uint32
			if *queue > 0 {
				// Async delivery: matched events print as each
				// subscriber's deliverer drains its queue.
				id, err = broker.SubscribeFunc(pubsub.Subscription(ranges),
					func(sub uint32, ev pubsub.Event) {
						fmt.Printf("deliver #%d: %v\n", sub, ev)
					})
			} else {
				id, err = broker.Subscribe(pubsub.Subscription(ranges))
			}
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("subscribed #%d\n", id)
		case "unsub":
			if len(fields) != 2 {
				fmt.Println("error: usage: unsub <id>")
				continue
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if broker.Unsubscribe(uint32(id)) {
				fmt.Printf("removed #%d\n", id)
			} else {
				fmt.Printf("no subscription #%d\n", id)
			}
		case "pub":
			ranges, err := parseRanges(fields[1:])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if *queue > 0 {
				n, err := broker.Publish(pubsub.Event(ranges))
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("matched %d subscription(s), queued for delivery\n", n)
				continue
			}
			ids, err := broker.Match(pubsub.Event(ranges))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("matched %d subscription(s): %v\n", len(ids), ids)
		case "stats":
			st := broker.Stats()
			fmt.Printf("subscriptions=%d events=%d matches=%d clusters=%d\n",
				st.Subscriptions, st.Events, st.Matches, st.Clusters)
			if *queue > 0 {
				fmt.Printf("delivered=%d dropped=%d queued=%d max_queue_depth=%d\n",
					st.Delivered, st.Dropped, st.Queued, st.MaxQueueDepth)
				for _, ss := range broker.SubscriberStats() {
					fmt.Printf("  #%d delivered=%d dropped=%d\n", ss.ID, ss.Delivered, ss.Dropped)
				}
			}
		default:
			fmt.Println("commands: sub, unsub, pub, stats, quit")
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "sdid: %v\n", err)
		os.Exit(1)
	}
}
