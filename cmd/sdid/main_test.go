package main

import (
	"context"
	"net"
	"strings"
	"time"

	"accluster/internal/netbroker"
	"testing"

	"accluster/internal/pubsub"
)

func TestParseRange(t *testing.T) {
	r, err := parseRange("400:700")
	if err != nil || r.Lo != 400 || r.Hi != 700 {
		t.Fatalf("parseRange(400:700) = %+v, %v", r, err)
	}
	r, err = parseRange("2")
	if err != nil || r != pubsub.Value(2) {
		t.Fatalf("parseRange(2) = %+v, %v", r, err)
	}
	if _, err := parseRange("abc"); err == nil {
		t.Error("bad lo must fail")
	}
	if _, err := parseRange("1:xyz"); err == nil {
		t.Error("bad hi must fail")
	}
}

func TestParseRanges(t *testing.T) {
	got, err := parseRanges([]string{"price=400:700", "baths=2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["price"].Hi != 700 || got["baths"] != pubsub.Value(2) {
		t.Fatalf("parseRanges: %+v", got)
	}
	if _, err := parseRanges([]string{"price"}); err == nil {
		t.Error("missing '=' must fail")
	}
	if _, err := parseRanges([]string{"price=a:b"}); err == nil {
		t.Error("bad range must fail")
	}
	if got, err := parseRanges(nil); err != nil || len(got) != 0 {
		t.Error("empty args must parse to empty map")
	}
}

// TestREPLLocalAndRemote drives the same script through a local session
// serving over netbroker and through a remote session connected to it.
func TestREPLLocalAndRemote(t *testing.T) {
	schema := pubsub.Schema{
		{Name: "price", Min: 0, Max: 5000},
		{Name: "rooms", Min: 1, Max: 10},
	}
	broker, err := pubsub.NewBroker(schema, pubsub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netbroker.Serve(broker, ln, netbroker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	local := &localSession{broker: broker, srv: srv}
	script := "sub price=400:700\npub price=550 rooms=4\nstats\nunsub 0\nquit\n"
	if err := runREPL(strings.NewReader(script), local); err != nil {
		t.Fatalf("local repl: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := netbroker.Dial(ctx, ln.Addr().String(), netbroker.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	remote := &remoteSession{ctx: ctx, cl: cl}
	id, err := remote.subscribe(map[string]pubsub.Range{"price": {Lo: 0, Hi: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if line, err := remote.publish(map[string]pubsub.Range{"price": pubsub.Value(500), "rooms": pubsub.Value(3)}); err != nil || !strings.Contains(line, "matched 1") {
		t.Fatalf("remote publish: %q, %v", line, err)
	}
	if existed, err := remote.unsubscribe(id); err != nil || !existed {
		t.Fatalf("remote unsubscribe: %v, %v", existed, err)
	}
	if s := remote.stats(); !strings.Contains(s, "connected=true") {
		t.Fatalf("remote stats: %q", s)
	}
	if s := local.stats(); !strings.Contains(s, "net: conns=") {
		t.Fatalf("local stats missing net line: %q", s)
	}
	if err := runREPL(strings.NewReader("pub price=100 rooms=2\nquit\n"), remote); err != nil {
		t.Fatalf("remote repl: %v", err)
	}
}
