package main

import (
	"testing"

	"accluster/internal/pubsub"
)

func TestParseRange(t *testing.T) {
	r, err := parseRange("400:700")
	if err != nil || r.Lo != 400 || r.Hi != 700 {
		t.Fatalf("parseRange(400:700) = %+v, %v", r, err)
	}
	r, err = parseRange("2")
	if err != nil || r != pubsub.Value(2) {
		t.Fatalf("parseRange(2) = %+v, %v", r, err)
	}
	if _, err := parseRange("abc"); err == nil {
		t.Error("bad lo must fail")
	}
	if _, err := parseRange("1:xyz"); err == nil {
		t.Error("bad hi must fail")
	}
}

func TestParseRanges(t *testing.T) {
	got, err := parseRanges([]string{"price=400:700", "baths=2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["price"].Hi != 700 || got["baths"] != pubsub.Value(2) {
		t.Fatalf("parseRanges: %+v", got)
	}
	if _, err := parseRanges([]string{"price"}); err == nil {
		t.Error("missing '=' must fail")
	}
	if _, err := parseRanges([]string{"price=a:b"}); err == nil {
		t.Error("bad range must fail")
	}
	if got, err := parseRanges(nil); err != nil || len(got) != 0 {
		t.Error("empty args must parse to empty map")
	}
}
