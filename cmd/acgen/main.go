// Command acgen generates experiment workloads as text files: collections of
// multidimensional extended objects (uniform or skewed, §7.2) and query sets
// with calibrated selectivity. One line per object:
//
//	id lo1 hi1 lo2 hi2 ... loN hiN
//
// Usage:
//
//	acgen -n 100000 -dims 16 -out objects.txt
//	acgen -queries 1000 -selectivity 5e-4 -dims 16 -out queries.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"accluster/internal/geom"
	"accluster/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 0, "number of database objects to generate")
		queries = flag.Int("queries", 0, "number of query rectangles to generate instead of objects")
		dims    = flag.Int("dims", 16, "space dimensionality")
		maxSize = flag.Float64("maxsize", 1, "maximum object interval size per dimension")
		skewed  = flag.Bool("skewed", false, "per object, a random quarter of the dimensions is twice as selective (Fig. 8 workload)")
		sel     = flag.Float64("selectivity", 5e-4, "target query selectivity (queries mode)")
		points  = flag.Bool("points", false, "generate point queries (events) instead of ranges")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "-", "output file ('-' for stdout)")
	)
	flag.Parse()

	if (*n == 0) == (*queries == 0) {
		fmt.Fprintln(os.Stderr, "acgen: set exactly one of -n (objects) or -queries")
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	emit := func(id int, r geom.Rect) error {
		if _, err := fmt.Fprintf(w, "%d", id); err != nil {
			return err
		}
		for d := 0; d < r.Dims(); d++ {
			if _, err := fmt.Fprintf(w, " %g %g", r.Min[d], r.Max[d]); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	if *n > 0 {
		g, err := workload.NewObjectGen(workload.ObjectSpec{
			Dims: *dims, MaxSize: float32(*maxSize), Skewed: *skewed, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "acgen: %v\n", err)
			os.Exit(1)
		}
		r := geom.NewRect(*dims)
		for id := 0; id < *n; id++ {
			g.Fill(r)
			if err := emit(id, r); err != nil {
				fmt.Fprintf(os.Stderr, "acgen: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	size := float32(0)
	if !*points {
		spec := workload.ObjectSpec{Dims: *dims, MaxSize: float32(*maxSize), Skewed: *skewed, Seed: *seed}
		s, achieved, err := workload.CalibrateQuerySize(spec, geom.Intersects, *sel, *seed+1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acgen: %v\n", err)
			os.Exit(1)
		}
		size = s
		fmt.Fprintf(os.Stderr, "acgen: calibrated query size %.4f (estimated selectivity %.3g)\n", s, achieved)
	}
	g, err := workload.NewQueryGen(workload.QuerySpec{Dims: *dims, Size: size, Seed: *seed + 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "acgen: %v\n", err)
		os.Exit(1)
	}
	q := geom.NewRect(*dims)
	for id := 0; id < *queries; id++ {
		g.Fill(q)
		if err := emit(id, q); err != nil {
			fmt.Fprintf(os.Stderr, "acgen: %v\n", err)
			os.Exit(1)
		}
	}
}
