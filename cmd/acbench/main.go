// Command acbench regenerates the paper's evaluation (EDBT 2004, Saita &
// Llirbat, "Clustering Multidimensional Extended Objects to Speed Up
// Execution of Spatial Queries"): Fig. 7 (selectivity sweep), Fig. 8
// (dimensionality sweep over skewed data), the point-enclosing experiment,
// and the ablations indexed in DESIGN.md.
//
// Usage:
//
//	acbench -exp fig7 -n 200000 -queries 200
//	acbench -exp all -n 50000 -csv results.csv
//	acbench -benchjson bench.json -cpuprofile cpu.out
//	acbench -diskjson BENCH_disk.json -disk-cache 67108864
//	acbench -brokerjson BENCH_broker.json
//
// The tables print the modeled per-query execution time under both storage
// scenarios (paper cost constants: 15 ms disk access, 20 MB/s transfer,
// 300 MB/s verification) plus measured wall time, partition counts and the
// explored/verified percentages of the paper's data-access tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"accluster/internal/harness"
	"accluster/internal/telemetry"
)

func main() {
	var (
		exps    = flag.String("exp", "fig7", "experiments to run: comma-separated list or 'all' ("+strings.Join(harness.Experiments(), ", ")+")")
		objects = flag.Int("n", 100000, "number of database objects")
		dims    = flag.Int("dims", 16, "space dimensionality (selectivity experiments)")
		queries = flag.Int("queries", 200, "measured queries per experiment point")
		warmup  = flag.Int("warmup", 1000, "warm-up queries before measuring (clustering convergence)")
		reorg   = flag.Int("reorg", 100, "queries between reorganization rounds")
		seed    = flag.Int64("seed", 1, "workload seed")
		maxSize = flag.Float64("maxsize", 1, "maximum object interval size per dimension")
		shards  = flag.Int("shards", 0, "max shard count for the sharded experiment: sweep doubles 1,2,4,...,N (0 = default sweep 1,2,4,8)")
		par     = flag.Int("parallel", 8, "max client-goroutine count of the -benchjson concurrency sweep (doubles 1,2,4,...,N; <= 0 skips the sweep)")
		csvPath = flag.String("csv", "", "also write results as CSV to this file")
		charts  = flag.Bool("chart", false, "also draw ASCII charts (the paper's figure shapes)")
		verbose = flag.Bool("v", false, "log progress to stderr")

		diskCache  = flag.Int64("disk-cache", 0, "decoded-region cache budget in bytes for the disk benchmark's largest sweep point (<= 0 = default 64 MiB)")
		batchMax   = flag.Int("batch", 0, "max batch size of the -benchjson batched-selection sweep 1,4,16,64,256 (0 = full sweep, negative = skip the batch section)")
		benchJSON  = flag.String("benchjson", "", "run the steady-state query micro-benchmark and write JSON results to this file (skips -exp)")
		diskJSON   = flag.String("diskjson", "", "run the disk-scenario benchmark (seed-scalar vs columnar, cold/warm x cache sizes) and write JSON results to this file (skips -exp)")
		brokerJSON = flag.String("brokerjson", "", "run the loopback netbroker load benchmark (10k subscriptions, paced event stream) and write JSON results to this file (skips -exp)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		telAddr    = flag.String("telemetry", "", "serve the flight-recorder introspection endpoint (runtime gauges, pprof, ring dump) on this address while the experiments run")
	)
	flag.Parse()

	if *telAddr != "" {
		rec := telemetry.New(telemetry.Config{})
		rec.Register(telemetry.RuntimeSource())
		rec.Start()
		defer rec.Close()
		srv, err := telemetry.Serve(rec, *telAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acbench: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "acbench: telemetry on http://%s/telemetry\n", srv.Addr())
	}

	o := harness.Options{
		Objects:    *objects,
		Dims:       *dims,
		Queries:    *queries,
		Warmup:     *warmup,
		ReorgEvery: *reorg,
		Seed:       *seed,
		MaxObjSize: float32(*maxSize),
		Parallel:   *par,
		DiskCache:  *diskCache,
		BatchMax:   *batchMax,
	}
	if *par <= 0 {
		o.Parallel = -1 // skip the concurrency sweep
	}
	if *shards > 0 {
		for k := 1; ; k <<= 1 {
			o.ShardSweep = append(o.ShardSweep, k)
			if k >= *shards {
				break
			}
		}
	}
	if *verbose {
		o.Log = os.Stderr
	}

	// run executes inside this wrapper (instead of os.Exit-ing in place)
	// so the profile defers flush even when an experiment fails — a
	// truncated CPU profile is useless in exactly the debugging session
	// the flags exist for.
	err := func() error {
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := pprof.StartCPUProfile(f); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
			defer pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			defer func() {
				f, err := os.Create(*memProfile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "acbench: %v\n", err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "acbench: memprofile: %v\n", err)
				}
			}()
		}
		return run(o, *exps, *benchJSON, *diskJSON, *brokerJSON, *csvPath, *charts)
	}()
	if err != nil {
		fmt.Fprintf(os.Stderr, "acbench: %v\n", err)
		os.Exit(1)
	}
}

// writeJSONReport writes a benchmark report to path.
func writeJSONReport(path string, render func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(o harness.Options, exps, benchJSON, diskJSON, brokerJSON, csvPath string, charts bool) error {
	// The benchmark modes replace the -exp experiments; both may be asked
	// for in one invocation.
	if benchJSON != "" {
		rep, err := harness.RunQueryBench(o)
		if err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
		if err := writeJSONReport(benchJSON, rep.WriteJSON); err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
	}
	if diskJSON != "" {
		rep, err := harness.RunDiskBench(o)
		if err != nil {
			return fmt.Errorf("diskjson: %w", err)
		}
		if err := writeJSONReport(diskJSON, rep.WriteJSON); err != nil {
			return fmt.Errorf("diskjson: %w", err)
		}
	}
	if brokerJSON != "" {
		rep, err := harness.RunBrokerBench(o)
		if err != nil {
			return fmt.Errorf("brokerjson: %w", err)
		}
		if err := writeJSONReport(brokerJSON, rep.WriteJSON); err != nil {
			return fmt.Errorf("brokerjson: %w", err)
		}
	}
	if benchJSON != "" || diskJSON != "" || brokerJSON != "" {
		return nil
	}

	ids := strings.Split(exps, ",")
	if exps == "all" {
		ids = harness.Experiments()
	}

	var csv *os.File
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csv = f
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		exp, err := harness.Run(id, o)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := exp.Render(os.Stdout); err != nil {
			return fmt.Errorf("render %s: %w", id, err)
		}
		if charts && len(exp.Points) > 1 {
			// Memory chart on a linear scale, disk chart on a log
			// scale, as in the paper's figures.
			if err := exp.RenderChart(os.Stdout, false, false); err != nil {
				fmt.Fprintf(os.Stderr, "acbench: chart %s: %v\n", id, err)
			}
			if err := exp.RenderChart(os.Stdout, true, true); err != nil {
				fmt.Fprintf(os.Stderr, "acbench: chart %s: %v\n", id, err)
			}
		}
		if csv != nil {
			if err := exp.CSV(csv); err != nil {
				return fmt.Errorf("csv %s: %w", id, err)
			}
		}
	}
	return nil
}
