// Command acbench regenerates the paper's evaluation (EDBT 2004, Saita &
// Llirbat, "Clustering Multidimensional Extended Objects to Speed Up
// Execution of Spatial Queries"): Fig. 7 (selectivity sweep), Fig. 8
// (dimensionality sweep over skewed data), the point-enclosing experiment,
// and the ablations indexed in DESIGN.md.
//
// Usage:
//
//	acbench -exp fig7 -n 200000 -queries 200
//	acbench -exp all -n 50000 -csv results.csv
//
// The tables print the modeled per-query execution time under both storage
// scenarios (paper cost constants: 15 ms disk access, 20 MB/s transfer,
// 300 MB/s verification) plus measured wall time, partition counts and the
// explored/verified percentages of the paper's data-access tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"accluster/internal/harness"
)

func main() {
	var (
		exps    = flag.String("exp", "fig7", "experiments to run: comma-separated list or 'all' ("+strings.Join(harness.Experiments(), ", ")+")")
		objects = flag.Int("n", 100000, "number of database objects")
		dims    = flag.Int("dims", 16, "space dimensionality (selectivity experiments)")
		queries = flag.Int("queries", 200, "measured queries per experiment point")
		warmup  = flag.Int("warmup", 1000, "warm-up queries before measuring (clustering convergence)")
		reorg   = flag.Int("reorg", 100, "queries between reorganization rounds")
		seed    = flag.Int64("seed", 1, "workload seed")
		maxSize = flag.Float64("maxsize", 1, "maximum object interval size per dimension")
		shards  = flag.Int("shards", 0, "max shard count for the sharded experiment: sweep doubles 1,2,4,...,N (0 = default sweep 1,2,4,8)")
		csvPath = flag.String("csv", "", "also write results as CSV to this file")
		charts  = flag.Bool("chart", false, "also draw ASCII charts (the paper's figure shapes)")
		verbose = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()

	o := harness.Options{
		Objects:    *objects,
		Dims:       *dims,
		Queries:    *queries,
		Warmup:     *warmup,
		ReorgEvery: *reorg,
		Seed:       *seed,
		MaxObjSize: float32(*maxSize),
	}
	if *shards > 0 {
		for k := 1; ; k <<= 1 {
			o.ShardSweep = append(o.ShardSweep, k)
			if k >= *shards {
				break
			}
		}
	}
	if *verbose {
		o.Log = os.Stderr
	}

	ids := strings.Split(*exps, ",")
	if *exps == "all" {
		ids = harness.Experiments()
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csv = f
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		exp, err := harness.Run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := exp.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "acbench: render %s: %v\n", id, err)
			os.Exit(1)
		}
		if *charts && len(exp.Points) > 1 {
			// Memory chart on a linear scale, disk chart on a log
			// scale, as in the paper's figures.
			if err := exp.RenderChart(os.Stdout, false, false); err != nil {
				fmt.Fprintf(os.Stderr, "acbench: chart %s: %v\n", id, err)
			}
			if err := exp.RenderChart(os.Stdout, true, true); err != nil {
				fmt.Fprintf(os.Stderr, "acbench: chart %s: %v\n", id, err)
			}
		}
		if csv != nil {
			if err := exp.CSV(csv); err != nil {
				fmt.Fprintf(os.Stderr, "acbench: csv %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}
