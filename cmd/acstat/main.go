// Command acstat decodes a flight-recorder dump written by the telemetry
// ring (Telemetry.WriteDump, the /telemetry/dump endpoint, or sdid's dump
// command) and renders the per-second gauge series plus the query-latency
// percentile tables.
//
// Usage:
//
//	acstat dump.bin                     summary + final gauges + percentiles
//	acstat -series dump.bin             per-sample series table (all columns)
//	acstat -cols adaptive.queries,runtime.heap_alloc -series -chart dump.bin
//	acstat -csv out.csv dump.bin        wide CSV, one row per sample
//
// Charts reuse the benchmark harness renderer, so the figures look like
// acbench's; counters are plotted as raw values (use the series table for
// per-interval deltas).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"accluster/internal/harness"
	"accluster/internal/telemetry"
)

func main() {
	var (
		cols   = flag.String("cols", "", "comma-separated column subset (default: all)")
		series = flag.Bool("series", false, "print the full per-sample series table")
		chart  = flag.Bool("chart", false, "draw ASCII charts of the selected columns")
		logY   = flag.Bool("log", false, "log-scale chart y axis")
		csvOut = flag.String("csv", "", "write the series as CSV to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: acstat [flags] <dump-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *cols, *series, *chart, *logY, *csvOut); err != nil {
		fmt.Fprintf(os.Stderr, "acstat: %v\n", err)
		os.Exit(1)
	}
}

func run(path, colSpec string, series, chart, logY bool, csvOut string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := telemetry.ReadDump(f)
	if err != nil {
		return err
	}

	nrows := 0
	for _, s := range d.Segments {
		nrows += len(s.Rows)
	}
	fmt.Printf("%s: %d samples in %d segment(s), interval %dms, %d histogram(s)\n",
		path, nrows, len(d.Segments), d.IntervalMS, len(d.Hists))
	if nrows == 0 {
		return nil
	}

	var want map[string]bool
	if colSpec != "" {
		want = make(map[string]bool)
		for _, c := range strings.Split(colSpec, ",") {
			if c = strings.TrimSpace(c); c != "" {
				want[c] = true
			}
		}
	}

	for si, seg := range d.Segments {
		sel := selectCols(seg, want)
		if len(sel) == 0 {
			continue
		}
		if len(d.Segments) > 1 {
			fmt.Printf("\n== segment %d: %d samples ==\n", si+1, len(seg.Rows))
		}
		if err := renderFinal(os.Stdout, seg, sel); err != nil {
			return err
		}
		if series {
			if err := renderSeriesTable(os.Stdout, seg, sel); err != nil {
				return err
			}
		}
		if chart {
			if err := renderCharts(os.Stdout, seg, sel, logY); err != nil {
				return err
			}
		}
	}

	if err := renderHists(os.Stdout, d.Hists); err != nil {
		return err
	}

	if csvOut != "" {
		cf, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		for _, seg := range d.Segments {
			if err := writeCSV(cf, seg); err != nil {
				cf.Close()
				return err
			}
		}
		return cf.Close()
	}
	return nil
}

// selectCols returns the indexes of the requested columns of a segment
// (skipping the leading timestamp, which every rendering handles itself).
func selectCols(seg telemetry.Segment, want map[string]bool) []int {
	var sel []int
	for i, c := range seg.Cols {
		if c == "ts_ms" {
			continue
		}
		if want == nil || want[c] {
			sel = append(sel, i)
		}
	}
	return sel
}

// tsIndex returns the timestamp column index (-1 when absent).
func tsIndex(seg telemetry.Segment) int {
	for i, c := range seg.Cols {
		if c == "ts_ms" {
			return i
		}
	}
	return -1
}

// relSeconds formats a row's capture time relative to the segment start.
func relSeconds(seg telemetry.Segment, ts int, row []int64) string {
	if ts < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fs", float64(row[ts]-seg.Rows[0][ts])/1000)
}

// renderFinal prints each selected gauge's final value plus its min and max
// over the segment — the at-a-glance view.
func renderFinal(w io.Writer, seg telemetry.Segment, sel []int) error {
	fmt.Fprintln(w, "\n-- gauges (final sample) --")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "gauge\tlast\tmin\tmax")
	last := seg.Rows[len(seg.Rows)-1]
	for _, ci := range sel {
		lo, hi := last[ci], last[ci]
		for _, row := range seg.Rows {
			if row[ci] < lo {
				lo = row[ci]
			}
			if row[ci] > hi {
				hi = row[ci]
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", seg.Cols[ci], last[ci], lo, hi)
	}
	return tw.Flush()
}

// renderSeriesTable prints one row per sample with the time offset first.
func renderSeriesTable(w io.Writer, seg telemetry.Segment, sel []int) error {
	fmt.Fprintln(w, "\n-- per-sample series --")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"t"}
	for _, ci := range sel {
		header = append(header, seg.Cols[ci])
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	ts := tsIndex(seg)
	for _, row := range seg.Rows {
		cells := []string{relSeconds(seg, ts, row)}
		for _, ci := range sel {
			cells = append(cells, fmt.Sprintf("%d", row[ci]))
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	return tw.Flush()
}

// chartGlyph cycles through distinguishable plot glyphs.
func chartGlyph(i int) byte {
	const glyphs = "123456789abcdefghijklmnopqrstuvwxyz"
	return glyphs[i%len(glyphs)]
}

// renderCharts draws the selected columns with the harness chart renderer,
// downsampling to a terminal-friendly number of x positions.
func renderCharts(w io.Writer, seg telemetry.Segment, sel []int, logY bool) error {
	const maxPoints = 12
	n := len(seg.Rows)
	step := 1
	if n > maxPoints {
		step = (n + maxPoints - 1) / maxPoints
	}
	ts := tsIndex(seg)
	var labels []string
	var picks []int
	for i := 0; i < n; i += step {
		picks = append(picks, i)
		labels = append(labels, relSeconds(seg, ts, seg.Rows[i]))
	}
	var ss []harness.Series
	for k, ci := range sel {
		s := harness.Series{Name: seg.Cols[ci], Glyph: chartGlyph(k)}
		for _, i := range picks {
			s.Values = append(s.Values, float64(seg.Rows[i][ci]))
		}
		ss = append(ss, s)
	}
	fmt.Fprintln(w)
	return harness.RenderSeries(w, "flight-recorder gauges", labels, ss, logY)
}

// renderHists prints the percentile table of every recorded histogram.
func renderHists(w io.Writer, hists []telemetry.HistSnapshot) error {
	if len(hists) == 0 {
		return nil
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	fmt.Fprintln(w, "\n-- latency histograms (µs) --")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "histogram\tcount\tmean\tp50\tp90\tp99\tp99.9\tmax")
	us := func(ns float64) string { return fmt.Sprintf("%.1f", ns/1e3) }
	for _, h := range hists {
		if h.Count() == 0 {
			fmt.Fprintf(tw, "%s\t0\t-\t-\t-\t-\t-\t-\n", h.Name)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			h.Name, h.Count(), us(h.Mean()),
			us(float64(h.Quantile(0.50))), us(float64(h.Quantile(0.90))),
			us(float64(h.Quantile(0.99))), us(float64(h.Quantile(0.999))),
			us(float64(h.Max())))
	}
	return tw.Flush()
}

// writeCSV emits a segment as wide CSV: the schema as header, one row per
// sample.
func writeCSV(w io.Writer, seg telemetry.Segment) error {
	if _, err := fmt.Fprintln(w, strings.Join(seg.Cols, ",")); err != nil {
		return err
	}
	for _, row := range seg.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprintf("%d", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
