package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"accluster/internal/core"
	"accluster/internal/geom"
	"accluster/internal/shard"
)

func buildCheckpoint(t *testing.T, dir string, n int) *shard.Engine {
	t.Helper()
	e, err := shard.New(shard.Config{Shards: 4, Workers: 1, Core: core.Config{Dims: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < n; i++ {
		r := geom.NewRect(2)
		for d := 0; d < 2; d++ {
			size := rng.Float32() * 0.2
			lo := rng.Float32() * (1 - size)
			r.Min[d], r.Max[d] = lo, lo+size
		}
		if err := e.Insert(uint32(i), r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	return e
}

func corruptSegment(t *testing.T, dir string, shardIdx int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == "MANIFEST" {
			continue
		}
		if len(name) >= 10 && name[:10] == "shard-000"+string(rune('0'+shardIdx)) {
			path := filepath.Join(dir, name)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[96] ^= 0xFF
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("no segment for shard %d in %s", shardIdx, dir)
}

// TestVerifyAndRepairCycle drives the CLI's core paths against a real
// on-disk checkpoint: healthy verify, damage detection, repair from a peer,
// post-repair health.
func TestVerifyAndRepairCycle(t *testing.T) {
	root := t.TempDir()
	primary := filepath.Join(root, "primary")
	peer := filepath.Join(root, "peer")
	e := buildCheckpoint(t, primary, 400)
	if err := e.SaveDir(peer); err != nil {
		t.Fatal(err)
	}

	ok, err := run(primary, false, "", true)
	if err != nil || !ok {
		t.Fatalf("healthy checkpoint: ok=%v err=%v", ok, err)
	}

	corruptSegment(t, primary, 2)
	ok, err = run(primary, false, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("verify missed the damaged segment")
	}

	// Repair without a peer fails (nothing to restore from).
	if _, err := run(primary, true, "", true); err == nil {
		t.Fatal("repair without peer succeeded despite damaged segment")
	}

	// Repair from the peer heals the checkpoint.
	ok, err = run(primary, true, peer, true)
	if err != nil || !ok {
		t.Fatalf("repair from peer: ok=%v err=%v", ok, err)
	}
	back, err := shard.LoadDir(primary, shard.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 400 {
		t.Fatalf("repaired checkpoint has %d objects, want 400", back.Len())
	}
}

// TestVerifySingleFile covers the non-directory branch.
func TestVerifySingleFile(t *testing.T) {
	dir := t.TempDir()
	buildCheckpoint(t, filepath.Join(dir, "ckpt"), 200)
	entries, err := os.ReadDir(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range entries {
		if e.Name() != "MANIFEST" {
			seg = filepath.Join(dir, "ckpt", e.Name())
			break
		}
	}
	ok, err := run(seg, false, "", true)
	if err != nil || !ok {
		t.Fatalf("healthy segment file: ok=%v err=%v", ok, err)
	}
	raw, _ := os.ReadFile(seg)
	raw[64] ^= 0xFF
	os.WriteFile(seg, raw, 0o644)
	ok, err = run(seg, false, "", true)
	if err != nil || ok {
		t.Fatalf("damaged segment file: ok=%v err=%v", ok, err)
	}
}

// TestSelftest runs the built-in smoke test end to end.
func TestSelftest(t *testing.T) {
	if err := runSelftest(); err != nil {
		t.Fatal(err)
	}
}
