// Command acfsck verifies and repairs accluster checkpoints offline: single
// database files written by SaveFile and sharded checkpoint directories
// written by SaveDir. Verification walks every checksum — header, directory,
// statistics block, all cluster regions, and for directories the manifest —
// exactly like a load would, without building the index.
//
// Usage:
//
//	acfsck db.acdb                    verify one database file
//	acfsck /var/lib/ac/ckpt           verify a checkpoint directory
//	acfsck -repair ckpt               repair: rebuild manifest, drop strays
//	acfsck -repair -from peer ckpt    also restore damaged segments from a
//	                                  peer checkpoint of the same database
//	acfsck -selftest                  exercise detect+repair on a synthetic
//	                                  corrupted checkpoint (CI smoke test)
//
// Exit status: 0 healthy (or fully repaired), 1 damage found (or repair
// incomplete), 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"accluster/internal/core"
	"accluster/internal/faultio"
	"accluster/internal/geom"
	"accluster/internal/shard"
	"accluster/internal/store"
)

func main() {
	var (
		repair   = flag.Bool("repair", false, "repair the checkpoint in place (directories only)")
		from     = flag.String("from", "", "peer checkpoint directory to restore damaged segments from")
		selftest = flag.Bool("selftest", false, "corrupt and repair a synthetic in-memory checkpoint, then exit")
		quiet    = flag.Bool("q", false, "suppress per-segment detail, print only the verdict")
	)
	flag.Parse()
	if *selftest {
		if err := runSelftest(); err != nil {
			fmt.Fprintf(os.Stderr, "acfsck: selftest: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("selftest: ok")
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: acfsck [-repair [-from peer]] <db-file-or-checkpoint-dir>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	ok, err := run(flag.Arg(0), *repair, *from, *quiet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acfsck: %v\n", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(path string, repair bool, from string, quiet bool) (bool, error) {
	info, err := os.Stat(path)
	if err != nil {
		return false, err
	}
	if !info.IsDir() {
		if repair {
			return false, fmt.Errorf("-repair applies to checkpoint directories; restore a single file from a peer copy directly")
		}
		if err := store.VerifyFile(path); err != nil {
			fmt.Printf("%s: %v\n", path, err)
			return false, nil
		}
		fmt.Printf("%s: ok\n", path)
		return true, nil
	}
	var r shard.CheckReport
	if repair {
		r, err = shard.RepairDir(store.OS, path, from)
		if err != nil {
			report(r, quiet)
			return false, err
		}
	} else {
		r = shard.CheckDir(store.OS, path)
	}
	report(r, quiet)
	return r.Healthy(), nil
}

func report(r shard.CheckReport, quiet bool) {
	if r.ManifestErr != nil {
		fmt.Printf("%s: manifest: %v\n", r.Dir, r.ManifestErr)
		return
	}
	bad := r.CorruptSegments()
	if !quiet {
		for _, s := range r.Segments {
			if s.Err != nil {
				fmt.Printf("  %s: %v\n", s.Name, s.Err)
			}
		}
		for _, name := range r.Stray {
			fmt.Printf("  %s: stray (not part of generation %d)\n", name, r.Generation)
		}
	}
	verdict := "ok"
	if len(bad) > 0 {
		verdict = fmt.Sprintf("%d/%d segments damaged", len(bad), len(r.Segments))
	}
	fmt.Printf("%s: generation %d, %d shards, %d dims: %s\n",
		r.Dir, r.Generation, r.Shards, r.Dims, verdict)
}

// runSelftest exercises the full detect-and-repair cycle against an
// in-memory checkpoint: build a sharded engine, checkpoint it twice (primary
// + peer), corrupt a primary segment and its manifest, then verify that
// CheckDir reports the damage and RepairDir restores a byte-for-byte healthy
// checkpoint from the peer.
func runSelftest() error {
	fsys := faultio.NewMemFS()
	e, err := shard.New(shard.Config{Shards: 4, Workers: 1, Core: core.Config{Dims: 3}})
	if err != nil {
		return err
	}
	for i := 0; i < 500; i++ {
		r := geom.NewRect(3)
		for d, m := range []int{31, 17, 7} {
			lo := float32(i%m) / float32(m+1)
			r.Min[d], r.Max[d] = lo, lo+0.01
		}
		if err := e.Insert(uint32(i), r); err != nil {
			return err
		}
	}
	if err := e.SaveDirFS(fsys, "primary"); err != nil {
		return err
	}
	if err := e.SaveDirFS(fsys, "peer"); err != nil {
		return err
	}
	// Damage one segment and destroy the manifest.
	names, err := fsys.ReadDir("primary")
	if err != nil {
		return err
	}
	for _, n := range names {
		if n == "MANIFEST" {
			if err := fsys.Corrupt("primary/"+n, 5); err != nil {
				return err
			}
			continue
		}
		if err := fsys.Corrupt("primary/"+n, 64); err != nil {
			return err
		}
		break
	}
	if r := shard.CheckDir(fsys, "primary"); r.Healthy() {
		return fmt.Errorf("corrupted checkpoint reported healthy")
	}
	r, err := shard.RepairDir(fsys, "primary", "peer")
	if err != nil {
		return err
	}
	if !r.Healthy() {
		return fmt.Errorf("repair left damage: manifest=%v corrupt=%v", r.ManifestErr, r.CorruptSegments())
	}
	// The repaired checkpoint must load and answer.
	re, err := shard.LoadDirFS(fsys, "primary", shard.Config{Workers: 1})
	if err != nil {
		return err
	}
	if re.Len() != 500 {
		return fmt.Errorf("repaired checkpoint has %d objects, want 500", re.Len())
	}
	return nil
}
