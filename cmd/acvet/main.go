// Command acvet runs this repository's invariant analyzers — the
// lock-discipline, zero-alloc, meter-publication and corrupt-error-wrapping
// checks under internal/analysis — over Go packages.
//
// Standalone (package patterns, default ./...):
//
//	acvet ./...
//
// As a `go vet` backend (cmd/go invokes it once per package with a JSON
// config file; diagnostics gate the build like any vet finding):
//
//	go build -o bin/acvet ./cmd/acvet
//	go vet -vettool=$PWD/bin/acvet ./...
//
// Exit status: 0 clean, 1 driver error, 2 findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"accluster/internal/analysis"
	"accluster/internal/analysis/suite"
)

func main() {
	// cmd/go probes the tool before use: -V=full asks for a cache
	// identity, -flags for the analyzer flags it may forward.
	progname := os.Args[0]
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Println(analysis.VetVersionLine(progname))
			return
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			runVetTool(args[0])
			return
		}
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: acvet [packages]   (standalone)\n       go vet -vettool=acvet [packages]\n\nAnalyzers:\n")
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	runStandalone(flag.Args())
}

// runVetTool handles one `go vet -vettool` package unit.
func runVetTool(cfgPath string) {
	cfg, err := analysis.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	found, err := analysis.RunVetTool(cfg, suite.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "acvet: %s: %v\n", cfg.ImportPath, err)
		os.Exit(1)
	}
	if found {
		os.Exit(2)
	}
}

// runStandalone loads the patterns and runs the suite over every matched
// package.
func runStandalone(patterns []string) {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	annot, err := analysis.ScanModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acvet: %v\n", err)
		os.Exit(1)
	}
	pkgs, err := analysis.LoadPackages(dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acvet: %v\n", err)
		os.Exit(1)
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, suite.Analyzers(), annot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acvet: %v\n", err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "acvet: %d finding(s)\n", found)
		os.Exit(2)
	}
}
