package main

import (
	"testing"

	"accluster"
)

func TestParseRelation(t *testing.T) {
	cases := map[string]bool{
		"intersects": true, "intersection": true,
		"contained-by": true, "containment": true,
		"encloses": true, "enclosure": true, "point": true,
		"overlap": false, "": false,
	}
	for in, ok := range cases {
		_, err := parseRelation(in)
		if (err == nil) != ok {
			t.Errorf("parseRelation(%q): err=%v, want ok=%v", in, err, ok)
		}
	}
}

func TestBuildIndex(t *testing.T) {
	for _, m := range []string{"adaptive", "ac", "seqscan", "ss", "rstar", "rs"} {
		ix, err := buildIndex(m, 4, "memory", 100, 0)
		if err != nil || ix == nil {
			t.Errorf("buildIndex(%s): %v", m, err)
		}
	}
	if _, err := buildIndex("btree", 4, "memory", 100, 0); err == nil {
		t.Error("unknown method must fail")
	}
	if _, err := buildIndex("adaptive", 4, "tape", 100, 0); err == nil {
		t.Error("unknown scenario must fail")
	}
	if ix, err := buildIndex("adaptive", 4, "disk", 100, 0); err != nil || ix == nil {
		t.Errorf("disk scenario: %v", err)
	}
	if ix, err := buildIndex("adaptive", 4, "calibrated", 100, 0); err != nil || ix == nil {
		t.Errorf("calibrated scenario: %v", err)
	}
	sh, err := buildIndex("adaptive", 4, "memory", 100, 4)
	if err != nil {
		t.Fatalf("sharded build: %v", err)
	}
	if s, ok := sh.(*accluster.Sharded); !ok || s.Shards() != 4 {
		t.Errorf("buildIndex with -shards 4 = %T, want *accluster.Sharded with 4 shards", sh)
	}
}
