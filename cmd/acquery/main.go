// Command acquery replays workload files produced by acgen (or any tool
// emitting "id lo hi [lo hi ...]" lines) against a chosen access method and
// reports data-access statistics and modeled execution times under both
// storage scenarios.
//
// Usage:
//
//	acgen -n 100000 -dims 16 -out objs.txt
//	acgen -queries 1000 -selectivity 5e-4 -dims 16 -out qs.txt
//	acquery -method adaptive -objects objs.txt -queries qs.txt -rel intersects
//
// With -batchfile the queries (one per line, same format) are executed as a
// single SearchIDsBatch call per pass — one signature-mirror pass and one
// statistics publication for the whole file — instead of looped singles:
//
//	acquery -method adaptive -objects objs.txt -batchfile qs.txt -rel intersects
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"accluster"
	"accluster/internal/workload"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "acquery: "+format+"\n", args...)
	os.Exit(1)
}

func parseRelation(s string) (accluster.Relation, error) {
	switch s {
	case "intersects", "intersection":
		return accluster.Intersects, nil
	case "contained-by", "containment":
		return accluster.ContainedBy, nil
	case "encloses", "enclosure", "point":
		return accluster.Encloses, nil
	default:
		return 0, fmt.Errorf("unknown relation %q (want intersects, contained-by or encloses)", s)
	}
}

func buildIndex(method string, dims int, scenario string, reorg, shards int) (accluster.Index, error) {
	var sc accluster.Scenario
	switch scenario {
	case "memory":
		sc = accluster.MemoryScenario()
	case "disk":
		sc = accluster.DiskScenario()
	case "calibrated":
		sc = accluster.CalibratedMemoryScenario(dims)
	default:
		return nil, fmt.Errorf("unknown scenario %q (want memory, disk or calibrated)", scenario)
	}
	if shards < 0 {
		return nil, fmt.Errorf("negative shard count %d", shards)
	}
	switch method {
	case "adaptive", "ac":
		if shards > 1 {
			return accluster.NewSharded(dims, accluster.WithScenario(sc),
				accluster.WithReorgEvery(reorg), accluster.WithShards(shards))
		}
		return accluster.NewAdaptive(dims, accluster.WithScenario(sc), accluster.WithReorgEvery(reorg))
	case "seqscan", "ss":
		return accluster.NewSeqScan(dims)
	case "rstar", "rs":
		return accluster.NewRStar(dims)
	default:
		return nil, fmt.Errorf("unknown method %q (want adaptive, seqscan or rstar)", method)
	}
}

func main() {
	var (
		method   = flag.String("method", "adaptive", "access method: adaptive, seqscan, rstar")
		objPath  = flag.String("objects", "", "objects workload file (required)")
		qPath    = flag.String("queries", "", "queries workload file (looped, one call per query)")
		bPath    = flag.String("batchfile", "", "queries workload file executed as one SearchIDsBatch call per pass")
		relName  = flag.String("rel", "intersects", "relation: intersects, contained-by, encloses")
		scenario = flag.String("scenario", "memory", "cost scenario for the adaptive index: memory, disk, calibrated")
		reorg    = flag.Int("reorg", 100, "queries between reorganizations (adaptive)")
		shards   = flag.Int("shards", 0, "partition the adaptive index across N shards with parallel fan-out queries (0 or 1 = single index)")
		repeat   = flag.Int("repeat", 1, "replay the query file this many times (first pass warms the clustering)")
	)
	flag.Parse()
	if *objPath == "" || (*qPath == "" && *bPath == "") {
		fail("-objects and one of -queries / -batchfile are required")
	}
	if *qPath != "" && *bPath != "" {
		fail("-queries and -batchfile are mutually exclusive")
	}
	batched := *bPath != ""
	if batched {
		*qPath = *bPath
	}
	rel, err := parseRelation(*relName)
	if err != nil {
		fail("%v", err)
	}

	of, err := os.Open(*objPath)
	if err != nil {
		fail("%v", err)
	}
	ids, rects, err := workload.ReadObjects(of)
	of.Close()
	if err != nil {
		fail("objects: %v", err)
	}
	qf, err := os.Open(*qPath)
	if err != nil {
		fail("%v", err)
	}
	_, queries, err := workload.ReadObjects(qf)
	qf.Close()
	if err != nil {
		fail("queries: %v", err)
	}
	dims := rects[0].Dims()
	if queries[0].Dims() != dims {
		fail("objects have %d dims, queries %d", dims, queries[0].Dims())
	}

	ix, err := buildIndex(*method, dims, *scenario, *reorg, *shards)
	if err != nil {
		fail("%v", err)
	}
	start := time.Now()
	for i, r := range rects {
		if err := ix.Insert(ids[i], r); err != nil {
			fail("insert %d: %v", ids[i], err)
		}
	}
	loadTime := time.Since(start)

	var elapsed time.Duration
	var dst *accluster.BatchResult
	for pass := 0; pass < *repeat; pass++ {
		if pass == *repeat-1 {
			ix.ResetStats()
			start = time.Now()
		}
		if batched {
			if dst, err = ix.SearchIDsBatch(dst, queries, rel); err != nil {
				fail("batch: %v", err)
			}
		} else {
			for _, q := range queries {
				if _, err := ix.Count(q, rel); err != nil {
					fail("query: %v", err)
				}
			}
		}
		if pass == *repeat-1 {
			elapsed = time.Since(start)
		}
	}

	st := ix.Stats()
	fmt.Printf("method=%s objects=%d dims=%d queries=%d relation=%v\n",
		*method, len(rects), dims, len(queries), rel)
	fmt.Printf("load: %v (%.0f objs/s)\n", loadTime.Round(time.Millisecond),
		float64(len(rects))/loadTime.Seconds())
	mode := "looped"
	if batched {
		mode = fmt.Sprintf("one batch of %d", len(queries))
	}
	fmt.Printf("measured: %.1f µs/query (last pass of %d, %s)\n",
		float64(elapsed.Microseconds())/float64(len(queries)), *repeat, mode)
	fmt.Printf("partitions=%d explored=%.1f%% verified=%.1f%% avg-results=%.1f\n",
		st.Partitions, 100*st.ExploredFraction(), 100*st.VerifiedFraction(),
		float64(st.Results)/float64(st.Queries))
	fmt.Printf("modeled: %.4g ms/query (memory), %.4g ms/query (disk)\n",
		st.ModeledMSPerQuery(accluster.MemoryScenario()),
		st.ModeledMSPerQuery(accluster.DiskScenario()))
}
