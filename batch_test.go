package accluster

// Batch-vs-looped equivalence at the public API: SearchIDsBatch must return
// the same per-query answers as looping SearchIDsAppend on every engine, and
// on the native batch engines (Adaptive, Sharded, Disk) it must charge the
// same per-query CPU statistics — the batch saves passes and seeks, never
// work accounting. The disk differential additionally pins the tentpole's
// I/O claim: a batch costs strictly fewer seeks than its looped equivalent.

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func sortedU32(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// batchEngines builds one structurally identical engine pair per engine kind
// from the same insert stream: one serves the batch, the twin serves the
// looped singles, so statistics comparisons are exact.
func batchEngines(t *testing.T, dims, n int, opts ...Option) map[string][2]Index {
	t.Helper()
	mk := func() []Index {
		ac, err := NewAdaptive(dims, opts...)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := NewSharded(dims, append([]Option{WithShards(4)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		sq, err := NewSeqScan(dims)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewRStar(dims)
		if err != nil {
			t.Fatal(err)
		}
		xt, err := NewXTree(dims)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ac.Close(); sh.Close() })
		return []Index{ac, sh, sq, rs, xt}
	}
	batch, loop := mk(), mk()
	rng := rand.New(rand.NewSource(int64(17 + dims)))
	for id := 0; id < n; id++ {
		r := randomRect(rng, dims, 0.3)
		for _, ix := range batch {
			if err := ix.Insert(uint32(id), r); err != nil {
				t.Fatal(err)
			}
		}
		for _, ix := range loop {
			if err := ix.Insert(uint32(id), r); err != nil {
				t.Fatal(err)
			}
		}
	}
	names := []string{"adaptive", "sharded", "seqscan", "rstar", "xtree"}
	out := make(map[string][2]Index, len(names))
	for i, name := range names {
		out[name] = [2]Index{batch[i], loop[i]}
	}
	return out
}

// TestSearchIDsBatchAllEngines pins batch answers against looped singles on
// every Index implementation, and — on the engines with a native batch plane
// — the exact per-query work accounting.
func TestSearchIDsBatchAllEngines(t *testing.T) {
	const dims = 4
	// A huge reorganization period freezes the adaptive structure, so the
	// batch and looped twins stay identical and comparisons are exact (the
	// core-level differential covers epoch boundaries inside a batch).
	engines := batchEngines(t, dims, 3000, WithReorgEvery(1<<30))
	native := map[string]bool{"adaptive": true, "sharded": true}
	for name, pair := range engines {
		t.Run(name, func(t *testing.T) {
			bx, lx := pair[0], pair[1]
			rng := rand.New(rand.NewSource(33))
			var dst *BatchResult
			var single []uint32
			for _, nq := range []int{1, 4, 17, 64} {
				for _, rel := range []Relation{Intersects, ContainedBy, Encloses} {
					qs := make([]Rect, nq)
					for i := range qs {
						if rel == Encloses {
							p := make([]float32, dims)
							for d := range p {
								p[d] = rng.Float32()
							}
							qs[i] = Point(p)
						} else {
							qs[i] = randomRect(rng, dims, 1)
						}
					}
					b0, l0 := bx.Stats(), lx.Stats()
					var err error
					dst, err = bx.SearchIDsBatch(dst, qs, rel)
					if err != nil {
						t.Fatal(err)
					}
					if dst.Queries() != nq {
						t.Fatalf("batch reports %d queries, want %d", dst.Queries(), nq)
					}
					for i, q := range qs {
						single, err = lx.SearchIDsAppend(single[:0], q, rel)
						if err != nil {
							t.Fatal(err)
						}
						if !equalU32(dst.IDs(i), single) {
							t.Fatalf("nq=%d rel=%v query %d: batch %d ids, looped %d", nq, rel, i, len(dst.IDs(i)), len(single))
						}
					}
					if native[name] {
						b1, l1 := bx.Stats(), lx.Stats()
						bd := [6]int64{b1.Queries - b0.Queries, b1.PartitionsChecked - b0.PartitionsChecked,
							b1.PartitionsExplored - b0.PartitionsExplored, b1.ObjectsVerified - b0.ObjectsVerified,
							b1.BytesVerified - b0.BytesVerified, b1.Results - b0.Results}
						ld := [6]int64{l1.Queries - l0.Queries, l1.PartitionsChecked - l0.PartitionsChecked,
							l1.PartitionsExplored - l0.PartitionsExplored, l1.ObjectsVerified - l0.ObjectsVerified,
							l1.BytesVerified - l0.BytesVerified, l1.Results - l0.Results}
						if bd != ld {
							t.Fatalf("nq=%d rel=%v: stats delta mismatch:\nbatch  %v\nlooped %v", nq, rel, bd, ld)
						}
					}
				}
			}
		})
	}
}

// TestSearchIDsBatchPointQueries pins the point-batch fast path: a batch of
// degenerate (Min == Max) rectangles takes the sorted binary-search kernel,
// whose per-query matches must still equal the looped singles for every
// relation — including ContainedBy, whose membership interval [bLo,aHi] can
// be empty. Mixed point/rectangle batches and batches holding a NaN
// coordinate must fall back to the general kernel with identical answers (a
// NaN coordinate matches nothing, exactly as it does looped).
func TestSearchIDsBatchPointQueries(t *testing.T) {
	const dims = 4
	engines := batchEngines(t, dims, 2000, WithReorgEvery(1<<30))
	native := map[string]bool{"adaptive": true, "sharded": true}
	point := func(rng *rand.Rand) Rect {
		p := make([]float32, dims)
		for d := range p {
			p[d] = rng.Float32()
		}
		return Point(p)
	}
	for name, pair := range engines {
		t.Run(name, func(t *testing.T) {
			bx, lx := pair[0], pair[1]
			rng := rand.New(rand.NewSource(91))
			var dst *BatchResult
			var single []uint32
			check := func(label string, qs []Rect, rel Relation) {
				t.Helper()
				b0, l0 := bx.Stats(), lx.Stats()
				var err error
				dst, err = bx.SearchIDsBatch(dst, qs, rel)
				if err != nil {
					t.Fatal(err)
				}
				for i, q := range qs {
					single, err = lx.SearchIDsAppend(single[:0], q, rel)
					if err != nil {
						t.Fatal(err)
					}
					if !equalU32(dst.IDs(i), single) {
						t.Fatalf("%s rel=%v query %d: batch %d ids, looped %d", label, rel, i, len(dst.IDs(i)), len(single))
					}
				}
				if native[name] {
					b1, l1 := bx.Stats(), lx.Stats()
					bd := [4]int64{b1.Queries - b0.Queries, b1.PartitionsChecked - b0.PartitionsChecked,
						b1.PartitionsExplored - b0.PartitionsExplored, b1.ObjectsVerified - b0.ObjectsVerified}
					ld := [4]int64{l1.Queries - l0.Queries, l1.PartitionsChecked - l0.PartitionsChecked,
						l1.PartitionsExplored - l0.PartitionsExplored, l1.ObjectsVerified - l0.ObjectsVerified}
					if bd != ld {
						t.Fatalf("%s rel=%v: stats delta mismatch:\nbatch  %v\nlooped %v", label, rel, bd, ld)
					}
				}
			}
			for _, nq := range []int{1, 16, 64} {
				for _, rel := range []Relation{Intersects, ContainedBy, Encloses} {
					qs := make([]Rect, nq)
					for i := range qs {
						qs[i] = point(rng)
					}
					check("points", qs, rel)
				}
			}
			check("mixed", []Rect{point(rng), randomRect(rng, dims, 0.5), point(rng)}, Intersects)
			nan := make([]float32, dims)
			for d := range nan {
				nan[d] = rng.Float32()
			}
			nan[2] = float32(math.NaN())
			check("nan", []Rect{point(rng), Point(nan), point(rng)}, Encloses)
		})
	}
}

// TestDiskSearchIDsBatch pins the disk batch plane, cache on and off: same
// per-query answer sets, same per-(cluster,query) CPU charges, and — the
// point of the coalesced read plan — strictly fewer seeks than the looped
// equivalent when the cache is off.
func TestDiskSearchIDsBatch(t *testing.T) {
	src, path := buildDiskCheckpoint(t, 4, 5000)
	defer src.Close()
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"cache-off", []Option{WithDiskCache(0)}},
		{"cache-on", []Option{WithDiskCache(32 << 20)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bx, err := OpenDisk(path, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer bx.Close()
			lx, err := OpenDisk(path, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer lx.Close()
			rng := rand.New(rand.NewSource(77))
			var dst *BatchResult
			var single []uint32
			for round := 0; round < 4; round++ {
				qs := make([]Rect, 64)
				for i := range qs {
					qs[i] = randomRect(rng, 4, 0.5)
				}
				b0, l0 := bx.Stats(), lx.Stats()
				dst, err = bx.SearchIDsBatch(dst, qs, Intersects)
				if err != nil {
					t.Fatal(err)
				}
				for i, q := range qs {
					single, err = lx.SearchIDsAppend(single[:0], q, Intersects)
					if err != nil {
						t.Fatal(err)
					}
					if !equalU32(sortedU32(dst.IDs(i)), sortedU32(single)) {
						t.Fatalf("round %d query %d: batch %d ids, looped %d", round, i, len(dst.IDs(i)), len(single))
					}
				}
				b1, l1 := bx.Stats(), lx.Stats()
				// CPU charges are per (cluster, query) and must match the
				// looped singles exactly; only the I/O accounting may differ.
				cpu := func(a, b Stats) [5]int64 {
					return [5]int64{a.Queries - b.Queries, a.PartitionsChecked - b.PartitionsChecked,
						a.PartitionsExplored - b.PartitionsExplored,
						a.ObjectsVerified - b.ObjectsVerified, a.Results - b.Results}
				}
				if cpu(b1, b0) != cpu(l1, l0) {
					t.Fatalf("round %d: CPU charge mismatch:\nbatch  %v\nlooped %v", round, cpu(b1, b0), cpu(l1, l0))
				}
				if tc.name == "cache-off" {
					bSeeks, lSeeks := b1.Seeks-b0.Seeks, l1.Seeks-l0.Seeks
					if bSeeks >= lSeeks {
						t.Fatalf("round %d: batch took %d seeks, looped %d — the coalesced plan must save seeks", round, bSeeks, lSeeks)
					}
				} else if b1.CacheHits-b0.CacheHits > l1.CacheHits-l0.CacheHits {
					t.Fatalf("round %d: batch probed the cache more than looped singles", round)
				}
			}
		})
	}
}

// TestConcurrentBatchMutationStress races batched selections against
// concurrent inserts, updates, deletes and background reorganization on both
// native in-memory engines. Results can't be pinned under mutation; the test
// asserts structural sanity (per-query slices present, ids within the ever-
// inserted range) and lets the race detector judge the interleavings.
func TestConcurrentBatchMutationStress(t *testing.T) {
	const dims = 3
	for name, ix := range concurrentEngines(t, dims, WithReorgEvery(20), WithBackgroundReorg()) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			for id := uint32(0); id < 3000; id++ {
				if err := ix.Insert(id, randomRect(rng, dims, 0.3)); err != nil {
					t.Fatal(err)
				}
			}
			const maxID = 3000 + 2*500
			var (
				readers, writers sync.WaitGroup
				stop             atomic.Bool
			)
			for w := 0; w < 2; w++ {
				writers.Add(1)
				go func(w int) {
					defer writers.Done()
					rng := rand.New(rand.NewSource(int64(200 + w)))
					base := uint32(3000 + w*500)
					for i := uint32(0); !stop.Load(); i++ {
						id := base + i%500
						switch i % 3 {
						case 0:
							_ = ix.Insert(id, randomRect(rng, dims, 0.2))
						case 1:
							_ = ix.Update(id, randomRect(rng, dims, 0.2))
						default:
							_ = ix.Delete(id)
						}
					}
				}(w)
			}
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func(r int) {
					defer readers.Done()
					rng := rand.New(rand.NewSource(int64(300 + r)))
					var dst *BatchResult
					for round := 0; round < 60; round++ {
						nq := 1 + rng.Intn(32)
						qs := make([]Rect, nq)
						for i := range qs {
							qs[i] = randomRect(rng, dims, 0.8)
						}
						var err error
						dst, err = ix.SearchIDsBatch(dst, qs, Intersects)
						if err != nil {
							t.Error(err)
							return
						}
						if dst.Queries() != nq {
							t.Errorf("batch reports %d queries, want %d", dst.Queries(), nq)
							return
						}
						for i := 0; i < nq; i++ {
							for _, id := range dst.IDs(i) {
								if id >= maxID {
									t.Errorf("query %d returned id %d beyond the inserted range", i, id)
									return
								}
							}
						}
					}
				}(r)
			}
			readers.Wait()
			stop.Store(true)
			writers.Wait()
		})
	}
}
