package accluster

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func sortedIDs(t *testing.T, ix Index, q Rect, rel Relation) []uint32 {
	t.Helper()
	ids, err := ix.SearchIDs(q, rel)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func idsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedMatchesAdaptive is the determinism cross-check: over identical
// data and queries, the sharded engine must return exactly the result sets
// of the single adaptive index, for every relation and interleaved with
// updates and deletes.
func TestShardedMatchesAdaptive(t *testing.T) {
	const dims, objects = 6, 3000
	single, err := NewAdaptive(dims, WithReorgEvery(50))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(dims, WithReorgEvery(50), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for id := uint32(0); id < objects; id++ {
		r := randomRect(rng, dims, 0.4)
		if err := single.Insert(id, r); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if single.Len() != sharded.Len() {
		t.Fatalf("Len: single=%d sharded=%d", single.Len(), sharded.Len())
	}

	rels := []Relation{Intersects, ContainedBy, Encloses}
	for round := 0; round < 30; round++ {
		// Mutate both the same way: update a few, delete a few.
		for i := 0; i < 5; i++ {
			id := uint32(rng.Intn(objects))
			r := randomRect(rng, dims, 0.4)
			errS := single.Update(id, r)
			errP := sharded.Update(id, r)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("Update(%d) diverged: single=%v sharded=%v", id, errS, errP)
			}
		}
		for i := 0; i < 3; i++ {
			id := uint32(rng.Intn(objects))
			if single.Delete(id) != sharded.Delete(id) {
				t.Fatalf("Delete(%d) diverged", id)
			}
		}
		q := randomRect(rng, dims, 0.6)
		for _, rel := range rels {
			want := sortedIDs(t, single, q, rel)
			got := sortedIDs(t, sharded, q, rel)
			if !idsEqual(want, got) {
				t.Fatalf("round %d rel %v: single returned %d ids, sharded %d ids",
					round, rel, len(want), len(got))
			}
		}
		// Point-enclosure: the SDI event case.
		p := NewRect(dims)
		for d := 0; d < dims; d++ {
			p.Min[d] = rng.Float32()
			p.Max[d] = p.Min[d]
		}
		if !idsEqual(sortedIDs(t, single, p, Encloses), sortedIDs(t, sharded, p, Encloses)) {
			t.Fatalf("round %d: point-enclosure diverged", round)
		}
	}
	if err := sharded.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestShardedStress hammers one sharded engine from many goroutines with
// mixed inserts, updates, deletes, searches of all relations and stats
// reads; run under -race it is the concurrency safety proof.
func TestShardedStress(t *testing.T) {
	const dims, workers, opsPerWorker = 4, 8, 400
	ix, err := NewSharded(dims, WithShards(4), WithReorgEvery(20))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Disjoint id space per worker: w*10^6 + k.
			base := uint32(w) * 1_000_000
			inserted := 0
			for k := 0; k < opsPerWorker; k++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // insert
					if err := ix.Insert(base+uint32(inserted), randomRect(rng, dims, 0.5)); err != nil {
						errCh <- err
						return
					}
					inserted++
				case 4: // update something we own
					if inserted > 0 {
						id := base + uint32(rng.Intn(inserted))
						err := ix.Update(id, randomRect(rng, dims, 0.5))
						if err != nil && !errors.Is(err, ErrNotFound) {
							errCh <- err
							return
						}
					}
				case 5: // delete something we own
					if inserted > 0 {
						ix.Delete(base + uint32(rng.Intn(inserted)))
					}
				case 6: // stats and point reads
					_ = ix.Stats()
					_, _ = ix.Get(base)
					_ = ix.Len()
				default: // search, all relations
					q := randomRect(rng, dims, 0.7)
					rel := []Relation{Intersects, ContainedBy, Encloses}[rng.Intn(3)]
					if _, err := ix.SearchIDs(q, rel); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestShardedInsertBatch checks bulk-load parity with per-object inserts.
func TestShardedInsertBatch(t *testing.T) {
	const dims = 5
	rng := rand.New(rand.NewSource(9))
	var ids []uint32
	var rects []Rect
	for id := uint32(0); id < 2000; id++ {
		ids = append(ids, id)
		rects = append(rects, randomRect(rng, dims, 0.3))
	}
	loop, err := NewSharded(dims, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewSharded(dims, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for k := range ids {
		if err := loop.Insert(ids[k], rects[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.InsertBatch(ids, rects); err != nil {
		t.Fatal(err)
	}
	if loop.Len() != batch.Len() {
		t.Fatalf("Len: loop=%d batch=%d", loop.Len(), batch.Len())
	}
	q := randomRect(rng, dims, 0.8)
	if !idsEqual(sortedIDs(t, loop, q, Intersects), sortedIDs(t, batch, q, Intersects)) {
		t.Error("batch-loaded engine answers differ")
	}
	// Adaptive.InsertBatch parity too.
	ad, err := NewAdaptive(dims)
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.InsertBatch(ids, rects); err != nil {
		t.Fatal(err)
	}
	if !idsEqual(sortedIDs(t, ad, q, Intersects), sortedIDs(t, batch, q, Intersects)) {
		t.Error("Adaptive.InsertBatch answers differ")
	}
	if err := ad.InsertBatch(ids[:1], nil); err == nil {
		t.Error("mismatched lengths must fail")
	}
}

// TestShardedPersistence round-trips a sharded database through SaveDir /
// OpenSharded.
func TestShardedPersistence(t *testing.T) {
	const dims = 4
	ix, err := NewSharded(dims, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for id := uint32(0); id < 1500; id++ {
		if err := ix.Insert(id, randomRect(rng, dims, 0.4)); err != nil {
			t.Fatal(err)
		}
	}
	// Converge some clustering so non-trivial shard structure is saved.
	for i := 0; i < 300; i++ {
		if _, err := ix.SearchIDs(randomRect(rng, dims, 0.5), Intersects); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(t.TempDir(), "sharded-db")
	if err := ix.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSharded(dir, WithReorgEvery(25))
	if err != nil {
		t.Fatal(err)
	}
	if re.Shards() != ix.Shards() || re.Len() != ix.Len() || re.Dims() != dims {
		t.Fatalf("reloaded shards=%d len=%d dims=%d, want %d/%d/%d",
			re.Shards(), re.Len(), re.Dims(), ix.Shards(), ix.Len(), dims)
	}
	for i := 0; i < 10; i++ {
		q := randomRect(rng, dims, 0.6)
		for _, rel := range []Relation{Intersects, ContainedBy, Encloses} {
			if !idsEqual(sortedIDs(t, ix, q, rel), sortedIDs(t, re, q, rel)) {
				t.Fatalf("query %d rel %v: reloaded answers differ", i, rel)
			}
		}
	}
	if err := re.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if _, err := OpenSharded(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing directory must fail")
	}
}

// TestShardedStatsAndInspect exercises the aggregated observability surface.
func TestShardedStatsAndInspect(t *testing.T) {
	ix, err := NewSharded(3, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for id := uint32(0); id < 1000; id++ {
		if err := ix.Insert(id, randomRect(rng, 3, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	const queries = 40
	for i := 0; i < queries; i++ {
		if _, err := ix.SearchIDs(randomRect(rng, 3, 0.5), Intersects); err != nil {
			t.Fatal(err)
		}
	}
	st := ix.Stats()
	if st.Queries != queries {
		t.Errorf("Stats.Queries=%d, want %d logical queries", st.Queries, queries)
	}
	if st.Objects != 1000 || st.Dims != 3 {
		t.Errorf("Stats objects/dims = %d/%d", st.Objects, st.Dims)
	}
	if st.Partitions < ix.Shards() {
		t.Errorf("Partitions=%d, want ≥ shard count %d (one root cluster each)", st.Partitions, ix.Shards())
	}
	if ms := st.ModeledMSPerQuery(MemoryScenario()); ms <= 0 {
		t.Errorf("ModeledMSPerQuery=%g, want > 0", ms)
	}
	per := ix.ShardStats()
	if len(per) != ix.Shards() {
		t.Fatalf("ShardStats returned %d entries, want %d", len(per), ix.Shards())
	}
	totalObjs := 0
	for _, s := range per {
		totalObjs += s.Objects
	}
	if totalObjs != 1000 {
		t.Errorf("per-shard objects sum to %d, want 1000", totalObjs)
	}
	if infos := ix.ClusterInfos(); len(infos) != ix.Clusters() {
		t.Errorf("ClusterInfos returned %d entries, want %d", len(infos), ix.Clusters())
	}
	ix.ResetStats()
	if st := ix.Stats(); st.Queries != 0 {
		t.Errorf("after ResetStats, Queries=%d", st.Queries)
	}
	// Force a reorganization round across shards.
	before := ix.ReorgRounds()
	ix.Reorganize()
	if ix.ReorgRounds() != before+int64(ix.Shards()) {
		t.Errorf("Reorganize ran %d rounds, want %d", ix.ReorgRounds()-before, ix.Shards())
	}
}

// TestUpdateParity checks Update across every Index implementation.
func TestUpdateParity(t *testing.T) {
	const dims = 3
	rng := rand.New(rand.NewSource(31))
	build := map[string]func() (Index, error){
		"adaptive": func() (Index, error) { return NewAdaptive(dims) },
		"sharded":  func() (Index, error) { return NewSharded(dims, WithShards(4)) },
		"seqscan":  func() (Index, error) { return NewSeqScan(dims) },
		"rstar":    func() (Index, error) { return NewRStar(dims) },
		"xtree":    func() (Index, error) { return NewXTree(dims) },
	}
	for name, mk := range build {
		ix, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r1 := randomRect(rng, dims, 0.2)
		if err := ix.Insert(1, r1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r2 := randomRect(rng, dims, 0.2)
		if err := ix.Update(1, r2); err != nil {
			t.Fatalf("%s: Update: %v", name, err)
		}
		if got, ok := ix.Get(1); !ok || !got.Equal(r2) {
			t.Errorf("%s: after Update, Get = %v,%v want %v", name, got, ok, r2)
		}
		if ix.Len() != 1 {
			t.Errorf("%s: Len=%d after Update, want 1", name, ix.Len())
		}
		if err := ix.Update(2, r2); !errors.Is(err, ErrNotFound) {
			t.Errorf("%s: Update of absent id = %v, want ErrNotFound", name, err)
		}
		// A failed update must not destroy the stored object.
		if err := ix.Update(1, NewRect(dims+1)); err == nil {
			t.Errorf("%s: dims-mismatched Update must fail", name)
		}
		if got, ok := ix.Get(1); !ok || !got.Equal(r2) {
			t.Errorf("%s: object lost after failed Update", name)
		}
	}
}
