package accluster

import (
	"math/rand"
	"testing"
)

func TestCalibratedScenarios(t *testing.T) {
	mem := CalibratedMemoryScenario(16)
	if mem.SigCheckMS <= 0 || mem.VerifyMSPerByte <= 0 {
		t.Fatalf("calibration produced %+v", mem)
	}
	if mem.SeekMS != 0 {
		t.Error("memory scenario must have no seek cost")
	}
	dsk := CalibratedDiskScenario(16)
	if dsk.SeekMS != 15 {
		t.Errorf("disk scenario seek = %g, want the paper's 15 ms", dsk.SeekMS)
	}
	// A calibrated scenario must be directly usable.
	ix, err := NewAdaptive(4, WithScenario(mem))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for id := uint32(0); id < 500; id++ {
		if err := ix.Insert(id, randomRect(rng, 4, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ix.Count(randomRect(rng, 4, 0.2), Intersects); err != nil {
		t.Fatal(err)
	}
}

func TestClusterInfosPublic(t *testing.T) {
	ix, err := NewAdaptive(3, WithReorgEvery(20))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for id := uint32(0); id < 2000; id++ {
		if err := ix.Insert(id, randomRect(rng, 3, 0.15)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := ix.Count(randomRect(rng, 3, 0.1), Intersects); err != nil {
			t.Fatal(err)
		}
	}
	infos := ix.ClusterInfos()
	if len(infos) != ix.Clusters() {
		t.Fatalf("%d infos, %d clusters", len(infos), ix.Clusters())
	}
	total := 0
	for _, in := range infos {
		total += in.Objects
	}
	if total != ix.Len() {
		t.Fatalf("infos hold %d objects, index %d", total, ix.Len())
	}
	if infos[0].Signature != "{root}" {
		t.Errorf("first info should be the root, got %q", infos[0].Signature)
	}
}

func TestPersistencePublic(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/db.acdb"
	ix, err := NewAdaptive(5, WithReorgEvery(25))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for id := uint32(0); id < 1500; id++ {
		if err := ix.Insert(id, randomRect(rng, 5, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := ix.Count(randomRect(rng, 5, 0.2), Intersects); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := OpenAdaptive(path, WithReorgEvery(25))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ix.Len() || back.Clusters() != ix.Clusters() || back.Dims() != 5 {
		t.Fatalf("recovered: len=%d clusters=%d dims=%d", back.Len(), back.Clusters(), back.Dims())
	}
	q := randomRect(rng, 5, 0.4)
	a, _ := ix.Count(q, Intersects)
	b, _ := back.Count(q, Intersects)
	if a != b {
		t.Fatalf("answers differ after recovery: %d vs %d", a, b)
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAdaptive(dir + "/missing.acdb"); err == nil {
		t.Error("opening a missing file must fail")
	}
}
