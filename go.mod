module accluster

go 1.22
