package accluster

import (
	"accluster/internal/shard"
	"accluster/internal/store"
)

// ErrCorrupt is the sentinel wrapped by every integrity failure detected
// while loading or verifying a checkpoint (checksum mismatches, truncated
// files, implausible headers). Distinguish damage from transient I/O errors
// with errors.Is(err, ErrCorrupt), and read the detail with errors.As into a
// *CorruptError.
var ErrCorrupt = store.ErrCorrupt

// CorruptError describes one detected integrity failure; it unwraps to
// ErrCorrupt.
type CorruptError = store.CorruptError

// SaveFile checkpoints the adaptive index into a database file using the
// paper's disk layout (§6): clusters stored sequentially with reserved
// slots (≥70% utilization) and a checksummed directory for fail recovery.
// The adaptive query statistics (per-cluster and per-candidate indicators
// plus the decayed window) are persisted in a format-versioned block, so a
// recovered index resumes adaptation warm; files written by older versions
// (no block) still load and re-gather statistics.
//
// The save is atomic and durable: the checkpoint is written to a temporary
// file, synced to media, and renamed over path (with the parent directory
// synced) — a crash, I/O error or full disk at any point leaves either the
// previous file or the complete new one, never a torn mix.
func (a *Adaptive) SaveFile(path string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return store.SaveFile(a.ix, path)
}

// OpenAdaptive recovers an adaptive index from a database file written by
// SaveFile, validating every checksum. The file is opened read-only and a
// missing path is an error (earlier versions silently created an empty
// file). The options configure the recovered index (scenario,
// reorganization period, …); the dimensionality comes from the file.
// Integrity failures wrap ErrCorrupt.
func OpenAdaptive(path string, opts ...Option) (*Adaptive, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	ix, err := store.LoadFile(path, coreConfig(0, o))
	if err != nil {
		return nil, err
	}
	a := newAdaptive(ix)
	if err := a.initTelemetry(o); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

// SaveDir checkpoints the sharded index into a directory: one database
// segment per shard in the paper's disk layout plus a checksummed manifest
// recording the shard count. Checkpoints are generational: a new save
// writes a complete new generation of segments, syncs them, then atomically
// flips the manifest before garbage-collecting the old generation — a crash
// at any point leaves either the previous or the new checkpoint loadable.
// Shards are written in parallel, each under its own lock — quiesce writers
// if a point-in-time snapshot of the whole engine is required. Each segment
// carries its shard's adaptive query statistics, so OpenSharded resumes
// adaptation warm.
func (s *Sharded) SaveDir(dir string) error { return s.e.SaveDir(dir) }

// OpenSharded recovers a sharded index from a directory written by SaveDir,
// validating every checksum. The options configure the recovered index; the
// shard count and dimensionality come from the manifest (WithShards is
// ignored — the save-time partitioning is part of the data). Integrity
// failures wrap ErrCorrupt.
//
// With WithSalvage the open degrades instead of failing when segments are
// damaged: the corrupt shards are quarantined (started empty) and the
// healthy partitions are served. Stats reports the quarantine count and
// Quarantined the details; repopulate with RestoreQuarantined or repair the
// directory offline with cmd/acfsck.
func OpenSharded(dir string, opts ...Option) (*Sharded, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	e, err := shard.LoadDir(dir, shard.Config{
		Workers: o.fanout,
		Salvage: o.salvage,
		Core:    coreConfig(0, o),
	})
	if err != nil {
		return nil, err
	}
	s := &Sharded{e: e}
	if err := s.initTelemetry(o); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}
