package accluster

import (
	"accluster/internal/core"
	"accluster/internal/shard"
	"accluster/internal/store"
)

// SaveFile checkpoints the adaptive index into a database file using the
// paper's disk layout (§6): clusters stored sequentially with reserved
// slots (≥70% utilization) and a checksummed directory for fail recovery.
// Query statistics are not persisted; they are re-gathered after recovery.
func (a *Adaptive) SaveFile(path string) error {
	dev, err := store.OpenFileDevice(path)
	if err != nil {
		return err
	}
	defer dev.Close()
	a.mu.Lock()
	defer a.mu.Unlock()
	return store.Save(a.ix, dev)
}

// OpenAdaptive recovers an adaptive index from a database file written by
// SaveFile, validating every checksum. The options configure the recovered
// index (scenario, reorganization period, …); the dimensionality comes from
// the file.
func OpenAdaptive(path string, opts ...Option) (*Adaptive, error) {
	dev, err := store.OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	o := gatherOptions(opts)
	ix, err := store.Load(dev, core.Config{
		Params:         o.scenario,
		DivisionFactor: o.divisionFactor,
		ReorgEvery:     o.reorgEvery,
		Decay:          o.decay,
	})
	if err != nil {
		return nil, err
	}
	return &Adaptive{ix: ix}, nil
}

// SaveDir checkpoints the sharded index into a directory: one database
// segment per shard in the paper's disk layout plus a checksummed manifest
// recording the shard count. Shards are written in parallel, each under its
// own lock — quiesce writers if a point-in-time snapshot of the whole engine
// is required. Query statistics are not persisted.
func (s *Sharded) SaveDir(dir string) error { return s.e.SaveDir(dir) }

// OpenSharded recovers a sharded index from a directory written by SaveDir,
// validating every checksum. The options configure the recovered index; the
// shard count and dimensionality come from the manifest (WithShards is
// ignored — the save-time partitioning is part of the data).
func OpenSharded(dir string, opts ...Option) (*Sharded, error) {
	o := gatherOptions(opts)
	e, err := shard.LoadDir(dir, shard.Config{
		Workers: o.fanout,
		Core: core.Config{
			Params:         o.scenario,
			DivisionFactor: o.divisionFactor,
			ReorgEvery:     o.reorgEvery,
			Decay:          o.decay,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Sharded{e: e}, nil
}
