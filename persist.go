package accluster

import (
	"accluster/internal/shard"
	"accluster/internal/store"
)

// SaveFile checkpoints the adaptive index into a database file using the
// paper's disk layout (§6): clusters stored sequentially with reserved
// slots (≥70% utilization) and a checksummed directory for fail recovery.
// The adaptive query statistics (per-cluster and per-candidate indicators
// plus the decayed window) are persisted in a format-versioned block, so a
// recovered index resumes adaptation warm; files written by older versions
// (no block) still load and re-gather statistics.
func (a *Adaptive) SaveFile(path string) error {
	dev, err := store.OpenFileDevice(path)
	if err != nil {
		return err
	}
	defer dev.Close()
	a.mu.Lock()
	defer a.mu.Unlock()
	return store.Save(a.ix, dev)
}

// OpenAdaptive recovers an adaptive index from a database file written by
// SaveFile, validating every checksum. The options configure the recovered
// index (scenario, reorganization period, …); the dimensionality comes from
// the file.
func OpenAdaptive(path string, opts ...Option) (*Adaptive, error) {
	dev, err := store.OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	ix, err := store.Load(dev, coreConfig(0, o))
	if err != nil {
		return nil, err
	}
	a := newAdaptive(ix)
	if err := a.initTelemetry(o); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

// SaveDir checkpoints the sharded index into a directory: one database
// segment per shard in the paper's disk layout plus a checksummed manifest
// recording the shard count. Shards are written in parallel, each under its
// own lock — quiesce writers if a point-in-time snapshot of the whole engine
// is required. Each segment carries its shard's adaptive query statistics,
// so OpenSharded resumes adaptation warm.
func (s *Sharded) SaveDir(dir string) error { return s.e.SaveDir(dir) }

// OpenSharded recovers a sharded index from a directory written by SaveDir,
// validating every checksum. The options configure the recovered index; the
// shard count and dimensionality come from the manifest (WithShards is
// ignored — the save-time partitioning is part of the data).
func OpenSharded(dir string, opts ...Option) (*Sharded, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	e, err := shard.LoadDir(dir, shard.Config{
		Workers: o.fanout,
		Core:    coreConfig(0, o),
	})
	if err != nil {
		return nil, err
	}
	s := &Sharded{e: e}
	if err := s.initTelemetry(o); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}
