package accluster

import (
	"accluster/internal/core"
	"accluster/internal/store"
)

// SaveFile checkpoints the adaptive index into a database file using the
// paper's disk layout (§6): clusters stored sequentially with reserved
// slots (≥70% utilization) and a checksummed directory for fail recovery.
// Query statistics are not persisted; they are re-gathered after recovery.
func (a *Adaptive) SaveFile(path string) error {
	dev, err := store.OpenFileDevice(path)
	if err != nil {
		return err
	}
	defer dev.Close()
	a.mu.Lock()
	defer a.mu.Unlock()
	return store.Save(a.ix, dev)
}

// OpenAdaptive recovers an adaptive index from a database file written by
// SaveFile, validating every checksum. The options configure the recovered
// index (scenario, reorganization period, …); the dimensionality comes from
// the file.
func OpenAdaptive(path string, opts ...Option) (*Adaptive, error) {
	dev, err := store.OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	o := gatherOptions(opts)
	ix, err := store.Load(dev, core.Config{
		Params:         o.scenario,
		DivisionFactor: o.divisionFactor,
		ReorgEvery:     o.reorgEvery,
		Decay:          o.decay,
	})
	if err != nil {
		return nil, err
	}
	return &Adaptive{ix: ix}, nil
}
