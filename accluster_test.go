package accluster

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"accluster/internal/workload"
)

func randomRect(rng *rand.Rand, dims int, maxSize float32) Rect {
	r := NewRect(dims)
	for d := 0; d < dims; d++ {
		size := rng.Float32() * maxSize
		lo := rng.Float32() * (1 - size)
		r.Min[d], r.Max[d] = lo, lo+size
	}
	return r
}

func allIndexes(t *testing.T, dims int) map[string]Index {
	t.Helper()
	ac, err := NewAdaptive(dims, WithReorgEvery(30))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSeqScan(dims)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRStar(dims, WithPageSize(2048))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Index{"adaptive": ac, "seqscan": ss, "rstar": rs}
}

func TestMakeRect(t *testing.T) {
	r, err := MakeRect([]float32{0.1, 0.2}, []float32{0.3, 0.4})
	if err != nil || r.Min[0] != 0.1 || r.Max[1] != 0.4 {
		t.Fatalf("MakeRect: %v, %v", r, err)
	}
	if _, err := MakeRect([]float32{0.1}, []float32{0.3, 0.4}); err == nil {
		t.Error("mismatched bounds must fail")
	}
	if _, err := MakeRect([]float32{0.5}, []float32{0.4}); err == nil {
		t.Error("inverted rect must fail")
	}
	if _, err := MakeRect(nil, nil); err == nil {
		t.Error("empty rect must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRect must panic on invalid input")
		}
	}()
	MustRect([]float32{0.9}, []float32{0.1})
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewAdaptive(0); err == nil {
		t.Error("NewAdaptive(0) must fail")
	}
	if _, err := NewSeqScan(-1); err == nil {
		t.Error("NewSeqScan(-1) must fail")
	}
	if _, err := NewRStar(0); err == nil {
		t.Error("NewRStar(0) must fail")
	}
	if _, err := NewAdaptive(2, WithDivisionFactor(1)); err == nil {
		t.Error("bad division factor must fail")
	}
	if _, err := NewRStar(2, WithMinFill(0.9)); err == nil {
		t.Error("bad min fill must fail")
	}
}

func TestIndexesAgree(t *testing.T) {
	const dims = 6
	idx := allIndexes(t, dims)
	rng := rand.New(rand.NewSource(12))
	for id := uint32(0); id < 1000; id++ {
		r := randomRect(rng, dims, 0.4)
		for name, ix := range idx {
			if err := ix.Insert(id, r); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	for qi := 0; qi < 90; qi++ {
		q := randomRect(rng, dims, 0.5)
		rel := Relation(qi % 3)
		results := map[string][]uint32{}
		for name, ix := range idx {
			ids, err := ix.SearchIDs(q, rel)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			results[name] = ids
		}
		want := results["seqscan"]
		for _, name := range []string{"adaptive", "rstar"} {
			got := results[name]
			if len(got) != len(want) {
				t.Fatalf("query %d rel %v: %s returned %d, seqscan %d", qi, rel, name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("query %d rel %v: %s disagrees with seqscan", qi, rel, name)
				}
			}
		}
	}
	// Delete some objects everywhere and re-verify.
	for id := uint32(0); id < 300; id++ {
		for name, ix := range idx {
			if !ix.Delete(id) {
				t.Fatalf("%s: Delete(%d) failed", name, id)
			}
		}
	}
	q := randomRect(rng, dims, 0.5)
	want, _ := idx["seqscan"].Count(q, Intersects)
	for _, name := range []string{"adaptive", "rstar"} {
		got, err := idx[name].Count(q, Intersects)
		if err != nil || got != want {
			t.Fatalf("%s after deletes: %d want %d (%v)", name, got, want, err)
		}
	}
}

func TestStatsAndModeledTime(t *testing.T) {
	ac, _ := NewAdaptive(4)
	rng := rand.New(rand.NewSource(3))
	for id := uint32(0); id < 200; id++ {
		if err := ac.Insert(id, randomRect(rng, 4, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := ac.Count(randomRect(rng, 4, 0.3), Intersects); err != nil {
			t.Fatal(err)
		}
	}
	st := ac.Stats()
	if st.Queries != 10 || st.Objects != 200 || st.Partitions < 1 {
		t.Fatalf("stats: %+v", st)
	}
	mem := st.ModeledMSPerQuery(MemoryScenario())
	dsk := st.ModeledMSPerQuery(DiskScenario())
	if mem <= 0 || dsk <= mem {
		t.Fatalf("modeled times: mem=%g disk=%g", mem, dsk)
	}
	if st.ExploredFraction() <= 0 || st.ExploredFraction() > 1 {
		t.Fatalf("explored fraction %g", st.ExploredFraction())
	}
	if st.VerifiedFraction() <= 0 || st.VerifiedFraction() > 1 {
		t.Fatalf("verified fraction %g", st.VerifiedFraction())
	}
	if st.String() == "" {
		t.Error("Stats.String")
	}
	ac.ResetStats()
	if ac.Stats().Queries != 0 {
		t.Error("ResetStats")
	}
	if (Stats{}).ExploredFraction() != 0 || (Stats{}).VerifiedFraction() != 0 {
		t.Error("zero stats fractions must be 0")
	}
}

func TestAdaptiveExtras(t *testing.T) {
	ac, _ := NewAdaptive(3, WithScenario(DiskScenario()), WithDecay(0.7), WithReorgEvery(10))
	rng := rand.New(rand.NewSource(5))
	for id := uint32(0); id < 2000; id++ {
		if err := ac.Insert(id, randomRect(rng, 3, 0.05)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		q := MustRect([]float32{0, 0, 0}, []float32{0.02, 0.02, 0.02})
		if _, err := ac.Count(q, Intersects); err != nil {
			t.Fatal(err)
		}
	}
	if ac.ReorgRounds() == 0 {
		t.Error("reorganizations should have run")
	}
	ac.Reorganize()
	if err := ac.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = ac.Clusters()
	_ = ac.Splits()
	_ = ac.Merges()
	if ac.Dims() != 3 {
		t.Error("Dims")
	}
}

func TestRStarExtras(t *testing.T) {
	rs, _ := NewRStar(2, WithPageSize(512), WithReinsertFrac(0.3), WithMinFill(0.4))
	rng := rand.New(rand.NewSource(8))
	for id := uint32(0); id < 500; id++ {
		if err := rs.Insert(id, randomRect(rng, 2, 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	if rs.Nodes() < 2 || rs.Height() < 2 {
		t.Errorf("tree too small: nodes=%d height=%d", rs.Nodes(), rs.Height())
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Get(0); !ok {
		t.Error("Get")
	}
	if rs.Dims() != 2 {
		t.Error("Dims")
	}
}

func TestConcurrentUse(t *testing.T) {
	ac, _ := NewAdaptive(3, WithReorgEvery(20))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := uint32(w) * 10000
			for i := uint32(0); i < 300; i++ {
				r := randomRect(rng, 3, 0.2)
				if err := ac.Insert(base+i, r); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%3 == 0 {
					if _, err := ac.Count(randomRect(rng, 3, 0.3), Intersects); err != nil {
						t.Errorf("count: %v", err)
						return
					}
				}
				if i%7 == 6 {
					ac.Delete(base + i - 3)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ac.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadIntegration(t *testing.T) {
	// End-to-end: calibrated queries against a real index should achieve
	// roughly the requested selectivity.
	const dims, n = 8, 4000
	spec := workload.ObjectSpec{Dims: dims, MaxSize: 0.4, Seed: 21}
	og, err := workload.NewObjectGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := NewSeqScan(dims)
	r := NewRect(dims)
	for id := uint32(0); id < n; id++ {
		og.Fill(r)
		if err := ss.Insert(id, r); err != nil {
			t.Fatal(err)
		}
	}
	target := 0.01
	size, achieved, err := workload.CalibrateQuerySize(spec, Intersects, target, 22)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := workload.NewQueryGen(workload.QuerySpec{Dims: dims, Size: size, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	measured, err := workload.MeasureSelectivity(func(q Rect, rel Relation) (int, error) {
		return ss.Count(q, rel)
	}, qg, Intersects, n, 200)
	if err != nil {
		t.Fatal(err)
	}
	if measured < target/3 || measured > target*3 {
		t.Errorf("measured selectivity %g for target %g (calibrated %g)", measured, target, achieved)
	}
}
