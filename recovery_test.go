package accluster

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestErrCorruptClassification pins the exported corruption taxonomy: any
// integrity failure surfaced by the public open paths must match ErrCorrupt
// via errors.Is and expose its detail via errors.As.
func TestErrCorruptClassification(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.acdb")
	a, err := NewAdaptive(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		if err := a.Insert(uint32(i), randomRect(rng, 2, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the file.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenAdaptive(path)
	if err == nil {
		t.Fatal("corrupted database opened silently")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("errors.Is(err, ErrCorrupt) = false for %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason == "" {
		t.Fatalf("errors.As to *CorruptError failed for %v", err)
	}
}

// TestOpenAdaptiveMissingFile pins the read-only open: a missing path is an
// error and no file is created as a side effect.
func TestOpenAdaptiveMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.acdb")
	if _, err := OpenAdaptive(path); err == nil {
		t.Fatal("opening a missing database succeeded")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("a failed open created the file")
	}
}

// TestSalvageOpenEndToEnd drives the full degraded-open story through the
// public API on the real filesystem: checkpoint, corrupt one segment,
// observe the strict open fail, open with WithSalvage, read the quarantine
// out of Stats/ShardStats/Quarantined, restore, re-save, reload healthy.
func TestSalvageOpenEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	s, err := NewSharded(2, WithShards(4), WithReorgEvery(25))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	const n = 600
	ids := make([]uint32, n)
	rects := make([]Rect, n)
	for i := 0; i < n; i++ {
		ids[i], rects[i] = uint32(i), randomRect(rng, 2, 0.2)
	}
	if err := s.InsertBatch(ids, rects); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation after first save = %d, want 1", g)
	}

	// Corrupt one segment on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victimFile string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "shard-0001") {
			victimFile = filepath.Join(dir, e.Name())
		}
	}
	if victimFile == "" {
		t.Fatalf("no segment for shard 1 among %v", entries)
	}
	raw, err := os.ReadFile(victimFile)
	if err != nil {
		t.Fatal(err)
	}
	raw[128] ^= 0xFF
	if err := os.WriteFile(victimFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict open refuses with a classified error.
	if _, err := OpenSharded(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict open err = %v, want ErrCorrupt", err)
	}

	// Salvage open degrades.
	back, err := OpenSharded(dir, WithSalvage())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	q := back.Quarantined()
	if len(q) != 1 || q[0].Shard != 1 || !errors.Is(q[0].Err, ErrCorrupt) {
		t.Fatalf("quarantine = %+v", q)
	}
	if got := back.Stats().QuarantinedPartitions; got != 1 {
		t.Fatalf("Stats.QuarantinedPartitions = %d, want 1", got)
	}
	if !strings.Contains(back.Stats().String(), "QUARANTINED=1") {
		t.Fatalf("Stats.String() hides the quarantine: %s", back.Stats())
	}
	perShard := back.ShardStats()
	for i, st := range perShard {
		want := 0
		if i == 1 {
			want = 1
		}
		if st.QuarantinedPartitions != want {
			t.Fatalf("shard %d QuarantinedPartitions = %d, want %d", i, st.QuarantinedPartitions, want)
		}
	}
	if back.Len() >= n || back.Len() == 0 {
		t.Fatalf("degraded engine has %d objects, want within (0,%d)", back.Len(), n)
	}
	// Healthy shards answer queries.
	got, err := back.Count(MustRect([]float32{0, 0}, []float32{1, 1}), Intersects)
	if err != nil {
		t.Fatal(err)
	}
	if got != back.Len() {
		t.Fatalf("degraded count = %d, want %d", got, back.Len())
	}

	// Restore, verify, checkpoint, reopen clean.
	if err := back.RestoreQuarantined(ids, rects); err != nil {
		t.Fatal(err)
	}
	if back.Stats().QuarantinedPartitions != 0 {
		t.Fatal("quarantine survives restore")
	}
	if back.Len() != n {
		t.Fatalf("restored engine has %d objects, want %d", back.Len(), n)
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := back.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if g := back.Generation(); g != 2 {
		t.Fatalf("generation after repair save = %d, want 2", g)
	}
	clean, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer clean.Close()
	if clean.Len() != n || clean.Stats().QuarantinedPartitions != 0 {
		t.Fatalf("reopened engine: %d objects, %d quarantined", clean.Len(), clean.Stats().QuarantinedPartitions)
	}
}

// TestGenerationalSaveKeepsDirClean pins the public-path GC: repeated saves
// leave exactly shards+1 files, regardless of how many generations passed.
func TestGenerationalSaveKeepsDirClean(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	s, err := NewSharded(2, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if err := s.Insert(uint32(i), randomRect(rng, 2, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 1; round <= 4; round++ {
		if err := s.SaveDir(dir); err != nil {
			t.Fatal(err)
		}
		if g := s.Generation(); g != uint64(round) {
			t.Fatalf("round %d: generation %d", round, g)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 3 { // MANIFEST + 2 segments
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name()
			}
			t.Fatalf("round %d: %d files %v, want 3", round, len(entries), names)
		}
	}
}
