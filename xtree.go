package accluster

import (
	"sync"

	"accluster/internal/xtree"
)

// XTree is the X-tree baseline (Berchtold, Keim, Kriegel, VLDB 1996): an
// R-tree variant for high-dimensional data that avoids high-overlap splits
// by growing multi-page supernodes, trading fan-out for sequential scans of
// larger regions. The paper discusses it as the related supernode approach
// (§2); in very high dimensions it degenerates toward sequential scan.
type XTree struct {
	mu sync.Mutex
	t  *xtree.Tree
}

// NewXTree builds an X-tree with 16 KB base pages by default. WithPageSize,
// WithMinFill and WithMaxOverlap tune it.
func NewXTree(dims int, opts ...Option) (*XTree, error) {
	o, err := gatherOptions(opts)
	if err != nil {
		return nil, err
	}
	t, err := xtree.New(xtree.Config{
		Dims:       dims,
		PageSize:   o.pageSize,
		MinFill:    o.minFill,
		MaxOverlap: o.maxOverlap,
	})
	if err != nil {
		return nil, err
	}
	return &XTree{t: t}, nil
}

// Insert adds an object.
func (x *XTree) Insert(id uint32, r Rect) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.Insert(id, r)
}

// Update replaces the rectangle stored under id; it returns an error
// wrapping ErrNotFound if the id is absent.
func (x *XTree) Update(id uint32, r Rect) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return updateByReplace(x.t.Dims(), id, r, x.t.Delete, x.t.Insert)
}

// Delete removes an object, reporting whether it existed.
func (x *XTree) Delete(id uint32) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.Delete(id)
}

// Get returns the rectangle stored under id.
func (x *XTree) Get(id uint32) (Rect, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.Get(id)
}

// Search walks the tree; supernodes are read sequentially.
func (x *XTree) Search(q Rect, rel Relation, emit func(id uint32) bool) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.Search(q, rel, emit)
}

// SearchIDs collects all qualifying identifiers.
func (x *XTree) SearchIDs(q Rect, rel Relation) ([]uint32, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.SearchIDs(q, rel)
}

// SearchIDsAppend appends all qualifying identifiers to dst and returns the
// extended slice.
func (x *XTree) SearchIDsAppend(dst []uint32, q Rect, rel Relation) ([]uint32, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return appendViaSearch(x.t.Search, dst, q, rel)
}

// SearchIDsBatch answers every query of the batch (looped tree walks; the
// baseline has no batch plane to exploit).
func (x *XTree) SearchIDsBatch(dst *BatchResult, qs []Rect, rel Relation) (*BatchResult, error) {
	return batchViaSingle(x.SearchIDsAppend, dst, qs, rel)
}

// Count returns the number of qualifying objects.
func (x *XTree) Count(q Rect, rel Relation) (int, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.Count(q, rel)
}

// Len returns the number of stored objects.
func (x *XTree) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.Len()
}

// Dims returns the data space dimensionality.
func (x *XTree) Dims() int { return x.t.Dims() }

// Nodes returns the number of tree nodes.
func (x *XTree) Nodes() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.Nodes()
}

// Supernodes returns the number of multi-page nodes.
func (x *XTree) Supernodes() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.Supernodes()
}

// Height returns the number of tree levels.
func (x *XTree) Height() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.Height()
}

// Stats returns a snapshot of the operation counters.
func (x *XTree) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return statsFrom(x.t.Meter(), x.t.Len(), x.t.Nodes(), x.t.Dims())
}

// ResetStats zeroes the operation counters.
func (x *XTree) ResetStats() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.t.ResetMeter()
}

// CheckInvariants validates the structural invariants; intended for tests.
func (x *XTree) CheckInvariants() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.t.CheckInvariants()
}

var _ Index = (*XTree)(nil)
