package accluster

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"accluster/internal/pubsub"
	"accluster/internal/telemetry"
)

// telemetryRects builds a small deterministic object set.
func telemetryRects(n, dims int, rng *rand.Rand) []Rect {
	out := make([]Rect, n)
	for i := range out {
		r := NewRect(dims)
		for d := 0; d < dims; d++ {
			lo := rng.Float32() * 0.9
			r.Min[d], r.Max[d] = lo, lo+0.05
		}
		out[i] = r
	}
	return out
}

// TestTelemetryFiveSubsystems is the acceptance check for the flight
// recorder: one shared recorder attached to every subsystem — adaptive core,
// sharded fan-out, disk engine with region cache, pubsub broker, Go runtime
// — must produce a ring dump whose decoded per-second rows carry live gauges
// from all five.
func TestTelemetryFiveSubsystems(t *testing.T) {
	tel, err := NewTelemetry(WithTelemetryInterval(time.Hour)) // sampled manually
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	rng := rand.New(rand.NewSource(7))
	const dims, n = 4, 400
	rects := telemetryRects(n, dims, rng)

	a, err := NewAdaptive(dims, WithTelemetry(tel), WithReorgEvery(10))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	sh, err := NewSharded(dims, WithTelemetry(tel), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for i, r := range rects {
		if err := a.Insert(uint32(i), r); err != nil {
			t.Fatal(err)
		}
		if err := sh.Insert(uint32(i), r); err != nil {
			t.Fatal(err)
		}
	}
	// Disk engine over a checkpoint of the adaptive index.
	path := filepath.Join(t.TempDir(), "db.ac")
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	dk, err := OpenDisk(path, WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	defer dk.Close()
	// Pubsub broker as the fifth subsystem.
	b, err := pubsub.NewBroker(pubsub.Schema{
		{Name: "x", Min: 0, Max: 1}, {Name: "y", Min: 0, Max: 1},
	}, pubsub.Options{QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	tel.rec.Register(b.TelemetrySource())
	if _, err := b.SubscribeFunc(pubsub.Subscription{"x": {Lo: 0, Hi: 1}},
		func(sub uint32, ev pubsub.Event) {}); err != nil {
		t.Fatal(err)
	}

	// Drive every subsystem, sampling as gauges move.
	q := MustRect([]float32{0.1, 0.1, 0.1, 0.1}, []float32{0.6, 0.6, 0.6, 0.6})
	var ids []uint32
	for i := 0; i < 30; i++ {
		if ids, err = a.SearchIDsAppend(ids[:0], q, Intersects); err != nil {
			t.Fatal(err)
		}
		if ids, err = sh.SearchIDsAppend(ids[:0], q, Intersects); err != nil {
			t.Fatal(err)
		}
		if ids, err = dk.SearchIDsAppend(ids[:0], q, Intersects); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Publish(pubsub.Event{"x": pubsub.Value(0.5), "y": pubsub.Value(0.5)}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			tel.Sample()
		}
	}
	// Queued delivery is asynchronous; wait for the deliverer to drain before
	// the final sample so pubsub.delivered is non-zero in the last row.
	for i := 0; i < 1000 && b.Stats().Delivered < 30; i++ {
		time.Sleep(time.Millisecond)
	}
	tel.Sample()

	var buf bytes.Buffer
	if err := tel.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := telemetry.ReadDump(&buf)
	if err != nil {
		t.Fatalf("dump does not decode: %v", err)
	}
	if len(d.Segments) == 0 {
		t.Fatal("dump has no segments")
	}
	last := d.Segments[len(d.Segments)-1]
	if len(last.Rows) == 0 {
		t.Fatal("last segment has no rows")
	}
	// One representative gauge per subsystem, all expected non-zero in the
	// final row.
	wantPositive := []string{
		"runtime.goroutines",      // Go runtime
		"adaptive.objects",        // core index: object count
		"adaptive.queries",        // cost.SyncMeter counters
		"adaptive.epoch",          // reorg epoch accessor
		"sharded.shard0_objects",  // per-shard counts
		"sharded.shard1_clusters", // per-shard counts
		"disk.queries",            // disk engine meter
		"disk.cache_entries",      // blockcache residency
		"pubsub.subscriptions",    // broker
		"pubsub.delivered",        // per-subscriber delivery counters
	}
	final := last.Rows[len(last.Rows)-1]
	for _, col := range wantPositive {
		idx := -1
		for i, c := range last.Cols {
			if c == col {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("column %q missing from dump schema %v", col, last.Cols)
			continue
		}
		if final[idx] <= 0 {
			t.Errorf("gauge %q = %d in final sample, want > 0", col, final[idx])
		}
	}
	// Query latency histograms from all three engines must be present and
	// populated.
	hists := map[string]bool{}
	for _, h := range d.Hists {
		hists[h.Name] = h.Count() > 0
	}
	for _, name := range []string{"adaptive.search_ns", "sharded.search_ns", "disk.search_ns"} {
		if !hists[name] {
			t.Errorf("histogram %q missing or empty (have %v)", name, hists)
		}
	}
}

func TestTelemetryEndpointOnEngine(t *testing.T) {
	a, err := NewAdaptive(2, WithTelemetryAddr("127.0.0.1:0"), WithTelemetryInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addr := a.TelemetryAddr()
	if addr == "" {
		t.Fatal("engine with WithTelemetryAddr has no bound address")
	}
	for i := 0; i < 50; i++ {
		if err := a.Insert(uint32(i), MustRect([]float32{0.1, 0.1}, []float32{0.2, 0.2})); err != nil {
			t.Fatal(err)
		}
	}
	q := MustRect([]float32{0, 0}, []float32{1, 1})
	if _, err := a.SearchIDs(q, Intersects); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/telemetry")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Samples int64            `json:"samples"`
			Gauges  map[string]int64 `json:"gauges"`
			Hists   []struct {
				Name  string `json:"name"`
				Count uint64 `json:"count"`
			} `json:"hists"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if body.Samples > 0 && body.Gauges["adaptive.objects"] == 50 {
			if len(body.Hists) != 1 || body.Hists[0].Name != "adaptive.search_ns" || body.Hists[0].Count == 0 {
				t.Fatalf("hists = %+v, want populated adaptive.search_ns", body.Hists)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("endpoint never showed the live gauges: %+v", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Close must tear the endpoint down.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/telemetry"); err == nil {
		t.Fatal("endpoint still serving after engine Close")
	}
}

func TestTelemetryOptionValidation(t *testing.T) {
	if _, err := NewAdaptive(2, WithTelemetry(nil)); err == nil {
		t.Error("nil telemetry accepted")
	}
	if _, err := NewTelemetry(WithTelemetryRing(0)); err == nil {
		t.Error("zero ring accepted")
	}
	if _, err := NewTelemetry(WithTelemetryInterval(0)); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewAdaptive(2, WithTelemetryAddr("")); err == nil {
		t.Error("empty telemetry address accepted")
	}
	tel, err := NewTelemetry()
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	if _, err := NewAdaptive(2, WithTelemetry(tel), WithTelemetryAddr(":0")); err == nil {
		t.Error("WithTelemetry + WithTelemetryAddr accepted together")
	}
}

// TestTelemetrySamplerVsMutations is the -race stress of the satellite: the
// sampler reads every gauge source flat out while the engines mutate,
// search, and reorganize concurrently.
func TestTelemetrySamplerVsMutations(t *testing.T) {
	tel, err := NewTelemetry(WithTelemetryInterval(200 * time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	const dims = 3
	a, err := NewAdaptive(dims, WithTelemetry(tel), WithReorgEvery(5), WithBackgroundReorg())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	sh, err := NewSharded(dims, WithTelemetry(tel), WithShards(2), WithReorgEvery(5))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	rng := rand.New(rand.NewSource(11))
	for i, r := range telemetryRects(200, dims, rng) {
		if err := a.Insert(uint32(i), r); err != nil {
			t.Fatal(err)
		}
		if err := sh.Insert(uint32(i), r); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	q := MustRect([]float32{0.2, 0.2, 0.2}, []float32{0.7, 0.7, 0.7})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) { // searcher
			defer wg.Done()
			var ids []uint32
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if ids, err = a.SearchIDsAppend(ids[:0], q, Intersects); err != nil {
					t.Errorf("adaptive search: %v", err)
					return
				}
				if ids, err = sh.SearchIDsAppend(ids[:0], q, Intersects); err != nil {
					t.Errorf("sharded search: %v", err)
					return
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() { // mutator
		defer wg.Done()
		r := rand.New(rand.NewSource(23))
		next := uint32(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rect := telemetryRects(1, dims, r)[0]
			if err := a.Insert(next, rect); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if err := sh.Insert(next, rect); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if next%3 == 0 {
				a.Delete(next - 2)
				sh.Delete(next - 2)
			}
			next++
		}
	}()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if tel.rec.Samples() == 0 {
		t.Fatal("sampler captured nothing during the stress")
	}
	var buf bytes.Buffer
	if err := tel.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ReadDump(&buf); err != nil {
		t.Fatalf("post-stress dump does not decode: %v", err)
	}
}

// TestTelemetryDuplicateEngineNames checks that two engines of the same kind
// sharing a recorder get distinct sources and histograms.
func TestTelemetryDuplicateEngineNames(t *testing.T) {
	tel, err := NewTelemetry(WithTelemetryInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	var engines []*Adaptive
	for i := 0; i < 2; i++ {
		a, err := NewAdaptive(2, WithTelemetry(tel))
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		engines = append(engines, a)
	}
	for i, a := range engines {
		for j := 0; j <= i; j++ { // engine 0: 1 query, engine 1: 2 queries
			if _, err := a.SearchIDs(MustRect([]float32{0, 0}, []float32{1, 1}), Intersects); err != nil {
				t.Fatal(err)
			}
		}
	}
	tel.Sample()
	var buf bytes.Buffer
	if err := tel.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := telemetry.ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cols := d.Segments[len(d.Segments)-1].Cols
	hasCol := func(name string) bool {
		for _, c := range cols {
			if c == name {
				return true
			}
		}
		return false
	}
	if !hasCol("adaptive.queries") || !hasCol("adaptive#2.queries") {
		t.Fatalf("expected adaptive and adaptive#2 sources, got %v", cols)
	}
	counts := map[string]uint64{}
	for _, h := range d.Hists {
		counts[h.Name] = h.Count()
	}
	if counts["adaptive.search_ns"] != 1 || counts["adaptive#2.search_ns"] != 2 {
		t.Fatalf("histograms not per-engine: %v", counts)
	}
}

// TestTelemetryZeroAllocSearch pins the zero-allocation guarantee of the
// warm query path with the flight recorder attached: the latency histogram
// record is one atomic increment and one atomic add, so an instrumented
// SearchIDsAppend into a reused buffer must still allocate nothing once the
// clustering is quiescent (reorganization disabled for the measurement).
func TestTelemetryZeroAllocSearch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tel, err := NewTelemetry(WithTelemetryInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	a, err := NewAdaptive(4, WithTelemetry(tel), WithReorgEvery(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	rng := rand.New(rand.NewSource(3))
	for i, r := range telemetryRects(2000, 4, rng) {
		if err := a.Insert(uint32(i), r); err != nil {
			t.Fatal(err)
		}
	}
	q := MustRect([]float32{0.2, 0.2, 0.2, 0.2}, []float32{0.4, 0.4, 0.4, 0.4})
	dst := make([]uint32, 0, 4096)
	for i := 0; i < 50; i++ { // warm the append buffer and any pools
		if dst, err = a.SearchIDsAppend(dst[:0], q, Intersects); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst, err = a.SearchIDsAppend(dst[:0], q, Intersects)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("instrumented warm search allocates %.1f/op, want 0", allocs)
	}
	if h := tel.rec.Histograms(); len(h) != 1 || h[0].Count() == 0 {
		t.Fatalf("latency histogram not recording: %+v", h)
	}
}
