package accluster_test

import (
	"fmt"
	"log"

	"accluster"
)

// ExampleNewAdaptive shows the basic lifecycle: insert extended objects and
// run the three spatial selections of the paper.
func ExampleNewAdaptive() {
	ix, err := accluster.NewAdaptive(2)
	if err != nil {
		log.Fatal(err)
	}
	// Three apartments-as-rectangles in a (price, rooms) space normalized
	// to [0,1].
	_ = ix.Insert(1, accluster.MustRect([]float32{0.10, 0.30}, []float32{0.30, 0.50}))
	_ = ix.Insert(2, accluster.MustRect([]float32{0.20, 0.40}, []float32{0.60, 0.80}))
	_ = ix.Insert(3, accluster.MustRect([]float32{0.70, 0.10}, []float32{0.90, 0.20}))

	q := accluster.MustRect([]float32{0.05, 0.25}, []float32{0.65, 0.85})
	for _, rel := range []accluster.Relation{
		accluster.Intersects, accluster.ContainedBy, accluster.Encloses,
	} {
		n, err := ix.Count(q, rel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v: %d\n", rel, n)
	}
	// Output:
	// intersects: 2
	// contained-by: 2
	// encloses: 0
}

// ExampleAdaptive_Search demonstrates point-enclosing queries — the
// publish/subscribe case where an event point retrieves every subscription
// covering it.
func ExampleAdaptive_Search() {
	ix, _ := accluster.NewAdaptive(2)
	// Subscriptions: acceptable (price, distance) ranges.
	_ = ix.Insert(100, accluster.MustRect([]float32{0.2, 0.0}, []float32{0.6, 0.5}))
	_ = ix.Insert(200, accluster.MustRect([]float32{0.5, 0.4}, []float32{0.9, 1.0}))

	event := accluster.Point([]float32{0.55, 0.45})
	var matched []uint32
	_ = ix.Search(event, accluster.Encloses, func(id uint32) bool {
		matched = append(matched, id)
		return true
	})
	fmt.Println(len(matched))
	// Output:
	// 2
}

// ExampleWithScenario shows how the storage scenario drives the clustering:
// the disk scenario's 15 ms seek cost makes the index form far fewer
// clusters than the memory scenario on the same data.
func ExampleWithScenario() {
	ix, err := accluster.NewAdaptive(16,
		accluster.WithScenario(accluster.DiskScenario()),
		accluster.WithReorgEvery(100),
		accluster.WithDecay(0.5),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ix.Dims(), ix.Clusters())
	// Output:
	// 16 1
}
